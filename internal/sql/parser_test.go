package sql

import (
	"strings"
	"testing"
)

func mustParseSelect(t *testing.T, q string) *SelectStmt {
	t.Helper()
	sel, err := ParseSelect(q)
	if err != nil {
		t.Fatalf("ParseSelect(%q): %v", q, err)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustParseSelect(t, "SELECT a, b FROM t WHERE a = 1")
	if len(sel.Columns) != 2 {
		t.Fatalf("columns = %d, want 2", len(sel.Columns))
	}
	if len(sel.From) != 1 {
		t.Fatalf("from = %d, want 1", len(sel.From))
	}
	tn, ok := sel.From[0].(*TableName)
	if !ok || tn.Name != "t" {
		t.Errorf("from[0] = %#v, want table t", sel.From[0])
	}
	cmp, ok := sel.Where.(*BinaryExpr)
	if !ok || cmp.Op != "=" {
		t.Errorf("where = %#v, want '=' comparison", sel.Where)
	}
}

func TestParsePaperFigure2Query(t *testing.T) {
	// The running example from Figure 2 of the paper.
	q := `SELECT * FROM WaterSalinity S, WaterTemp T, CityLocations L WHERE T.temp < 18`
	sel := mustParseSelect(t, q)
	if !sel.Columns[0].Star {
		t.Errorf("expected SELECT *")
	}
	if len(sel.From) != 3 {
		t.Fatalf("from list = %d, want 3", len(sel.From))
	}
	aliases := map[string]string{}
	for _, ref := range sel.From {
		tn := ref.(*TableName)
		aliases[tn.Alias] = tn.Name
	}
	if aliases["S"] != "WaterSalinity" || aliases["T"] != "WaterTemp" || aliases["L"] != "CityLocations" {
		t.Errorf("aliases = %v", aliases)
	}
}

func TestParsePaperFigure1MetaQuery(t *testing.T) {
	// The meta-query of Figure 1 is itself plain SQL and must parse.
	q := `SELECT Q.qid, Q.qText
	FROM Queries Q, Attributes A1, Attributes A2
	WHERE Q.qid = A1.qid AND Q.qid = A2.qid
	AND A1.attrName = 'salinity'
	AND A1.relName = 'WaterSalinity'
	AND A2.attrName = 'temp'
	AND A2.relName = 'WaterTemp'`
	sel := mustParseSelect(t, q)
	if len(sel.From) != 3 {
		t.Errorf("from = %d, want 3", len(sel.From))
	}
	a := Analyze(sel)
	if len(a.Predicates) != 6 {
		t.Errorf("predicates = %d, want 6", len(a.Predicates))
	}
}

func TestParseJoins(t *testing.T) {
	cases := []struct {
		q    string
		typ  JoinType
		cols int
	}{
		{"SELECT * FROM a JOIN b ON a.x = b.x", JoinInner, 1},
		{"SELECT * FROM a INNER JOIN b ON a.x = b.x", JoinInner, 1},
		{"SELECT * FROM a LEFT JOIN b ON a.x = b.x", JoinLeft, 1},
		{"SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.x", JoinLeft, 1},
		{"SELECT * FROM a RIGHT JOIN b ON a.x = b.x", JoinRight, 1},
		{"SELECT * FROM a FULL OUTER JOIN b ON a.x = b.x", JoinFull, 1},
		{"SELECT * FROM a CROSS JOIN b", JoinCross, 1},
	}
	for _, c := range cases {
		sel := mustParseSelect(t, c.q)
		join, ok := sel.From[0].(*JoinExpr)
		if !ok {
			t.Errorf("%q: from[0] is %T, want JoinExpr", c.q, sel.From[0])
			continue
		}
		if join.Type != c.typ {
			t.Errorf("%q: join type = %v, want %v", c.q, join.Type, c.typ)
		}
	}
}

func TestParseJoinUsing(t *testing.T) {
	sel := mustParseSelect(t, "SELECT * FROM a JOIN b USING (x, y)")
	join := sel.From[0].(*JoinExpr)
	if len(join.Using) != 2 || join.Using[0] != "x" || join.Using[1] != "y" {
		t.Errorf("using = %v", join.Using)
	}
}

func TestParseChainedJoins(t *testing.T) {
	sel := mustParseSelect(t, "SELECT * FROM a JOIN b ON a.x = b.x JOIN c ON b.y = c.y")
	outer, ok := sel.From[0].(*JoinExpr)
	if !ok {
		t.Fatalf("from[0] = %T", sel.From[0])
	}
	if _, ok := outer.Left.(*JoinExpr); !ok {
		t.Errorf("left of outer join should be the first join, got %T", outer.Left)
	}
}

func TestParseNestedSubqueries(t *testing.T) {
	q := `SELECT city FROM CityLocations WHERE city IN (SELECT city FROM Cities WHERE state = 'WA')`
	sel := mustParseSelect(t, q)
	in, ok := sel.Where.(*InExpr)
	if !ok {
		t.Fatalf("where = %T, want InExpr", sel.Where)
	}
	if in.Select == nil {
		t.Fatalf("IN subquery missing")
	}
	subs := Subqueries(sel)
	if len(subs) != 1 {
		t.Errorf("Subqueries = %d, want 1", len(subs))
	}
}

func TestParseDerivedTable(t *testing.T) {
	q := `SELECT avg_temp FROM (SELECT AVG(temp) AS avg_temp FROM WaterTemp GROUP BY lake) sub WHERE avg_temp > 15`
	sel := mustParseSelect(t, q)
	sub, ok := sel.From[0].(*SubqueryRef)
	if !ok {
		t.Fatalf("from[0] = %T, want SubqueryRef", sel.From[0])
	}
	if sub.Alias != "sub" {
		t.Errorf("alias = %q, want sub", sub.Alias)
	}
	if len(sub.Select.GroupBy) != 1 {
		t.Errorf("inner group by = %d, want 1", len(sub.Select.GroupBy))
	}
}

func TestParseGroupByHavingOrderLimit(t *testing.T) {
	q := `SELECT lake, AVG(temp) AS avg_temp FROM WaterTemp WHERE temp > 0 GROUP BY lake HAVING AVG(temp) > 10 ORDER BY avg_temp DESC LIMIT 10 OFFSET 5`
	sel := mustParseSelect(t, q)
	if len(sel.GroupBy) != 1 {
		t.Errorf("group by = %d, want 1", len(sel.GroupBy))
	}
	if sel.Having == nil {
		t.Errorf("having missing")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order by = %#v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Limit.Count != 10 || !sel.Limit.HasOffset || sel.Limit.Offset != 5 {
		t.Errorf("limit = %#v", sel.Limit)
	}
}

func TestParsePredicateVariants(t *testing.T) {
	cases := []string{
		"SELECT * FROM t WHERE a BETWEEN 1 AND 10",
		"SELECT * FROM t WHERE a NOT BETWEEN 1 AND 10",
		"SELECT * FROM t WHERE name LIKE 'Lake%'",
		"SELECT * FROM t WHERE name NOT LIKE 'Lake%'",
		"SELECT * FROM t WHERE a IS NULL",
		"SELECT * FROM t WHERE a IS NOT NULL",
		"SELECT * FROM t WHERE a IN (1, 2, 3)",
		"SELECT * FROM t WHERE a NOT IN (1, 2, 3)",
		"SELECT * FROM t WHERE EXISTS (SELECT 1 FROM u WHERE u.id = t.id)",
		"SELECT * FROM t WHERE NOT EXISTS (SELECT 1 FROM u)",
		"SELECT * FROM t WHERE NOT a = 1",
		"SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)",
		"SELECT * FROM t WHERE salinity > (SELECT AVG(salinity) FROM t)",
	}
	for _, q := range cases {
		if _, err := ParseSelect(q); err != nil {
			t.Errorf("ParseSelect(%q): %v", q, err)
		}
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []string{
		"SELECT a + b * c FROM t",
		"SELECT (a + b) * c FROM t",
		"SELECT -a, +b FROM t",
		"SELECT a || '-' || b FROM t",
		"SELECT COUNT(*), COUNT(DISTINCT a), SUM(a), AVG(b), MIN(c), MAX(d) FROM t",
		"SELECT LOWER(name), COALESCE(a, b, 0) FROM t",
		"SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END FROM t",
		"SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t",
		"SELECT a AS x, b y, t.* FROM t",
		"SELECT TRUE, FALSE, NULL FROM t",
	}
	for _, q := range cases {
		if _, err := ParseSelect(q); err != nil {
			t.Errorf("ParseSelect(%q): %v", q, err)
		}
	}
}

func TestParseArithmeticPrecedence(t *testing.T) {
	sel := mustParseSelect(t, "SELECT a + b * c FROM t")
	add, ok := sel.Columns[0].Expr.(*BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("top op = %#v, want +", sel.Columns[0].Expr)
	}
	mul, ok := add.Right.(*BinaryExpr)
	if !ok || mul.Op != "*" {
		t.Errorf("right = %#v, want *", add.Right)
	}
}

func TestParseAndOrPrecedence(t *testing.T) {
	sel := mustParseSelect(t, "SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := sel.Where.(*BinaryExpr)
	if !ok || or.Op != "OR" {
		t.Fatalf("top = %#v, want OR", sel.Where)
	}
	and, ok := or.Right.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Errorf("right = %#v, want AND", or.Right)
	}
}

func TestParseCompound(t *testing.T) {
	sel := mustParseSelect(t, "SELECT a FROM t UNION ALL SELECT a FROM u")
	if sel.Compound == nil || sel.Compound.Op != "UNION" || !sel.Compound.All {
		t.Fatalf("compound = %#v", sel.Compound)
	}
	if sel.Compound.Right == nil {
		t.Errorf("compound right missing")
	}
}

func TestParseInsert(t *testing.T) {
	stmt, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ins, ok := stmt.(*InsertStmt)
	if !ok {
		t.Fatalf("stmt = %T", stmt)
	}
	if ins.Table != "t" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Errorf("insert = %#v", ins)
	}
}

func TestParseInsertSelect(t *testing.T) {
	stmt, err := Parse("INSERT INTO archive SELECT * FROM t WHERE year < 2000")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ins := stmt.(*InsertStmt)
	if ins.Select == nil {
		t.Errorf("insert-select missing select")
	}
}

func TestParseUpdateDelete(t *testing.T) {
	stmt, err := Parse("UPDATE t SET a = 1, b = b + 1 WHERE id = 5")
	if err != nil {
		t.Fatalf("Parse update: %v", err)
	}
	upd := stmt.(*UpdateStmt)
	if len(upd.Set) != 2 || upd.Where == nil {
		t.Errorf("update = %#v", upd)
	}

	stmt, err = Parse("DELETE FROM t WHERE id = 5")
	if err != nil {
		t.Fatalf("Parse delete: %v", err)
	}
	del := stmt.(*DeleteStmt)
	if del.Table != "t" || del.Where == nil {
		t.Errorf("delete = %#v", del)
	}
}

func TestParseCreateTable(t *testing.T) {
	stmt, err := Parse("CREATE TABLE IF NOT EXISTS WaterTemp (id INT PRIMARY KEY, lake VARCHAR(100) NOT NULL, temp FLOAT, measured TIMESTAMP)")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	ct := stmt.(*CreateTableStmt)
	if !ct.IfNotExists || ct.Table != "WaterTemp" || len(ct.Columns) != 4 {
		t.Fatalf("create = %#v", ct)
	}
	if !ct.Columns[0].PrimaryKey {
		t.Errorf("first column should be primary key")
	}
	if ct.Columns[1].Type != "TEXT" || !ct.Columns[1].NotNull {
		t.Errorf("second column = %#v", ct.Columns[1])
	}
	if ct.Columns[3].Type != "TIMESTAMP" {
		t.Errorf("fourth column type = %q", ct.Columns[3].Type)
	}
}

func TestParseDropAndAlter(t *testing.T) {
	stmt, err := Parse("DROP TABLE IF EXISTS old_data")
	if err != nil {
		t.Fatalf("Parse drop: %v", err)
	}
	if d := stmt.(*DropTableStmt); !d.IfExists || d.Table != "old_data" {
		t.Errorf("drop = %#v", d)
	}

	cases := []struct {
		q      string
		action AlterAction
	}{
		{"ALTER TABLE t ADD COLUMN c INT", AlterAddColumn},
		{"ALTER TABLE t DROP COLUMN c", AlterDropColumn},
		{"ALTER TABLE t RENAME COLUMN a TO b", AlterRenameColumn},
		{"ALTER TABLE t RENAME TO u", AlterRenameTable},
	}
	for _, c := range cases {
		stmt, err := Parse(c.q)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.q, err)
			continue
		}
		if a := stmt.(*AlterTableStmt); a.Action != c.action {
			t.Errorf("%q action = %v, want %v", c.q, a.Action, c.action)
		}
	}
}

func TestParseStatements(t *testing.T) {
	stmts, err := ParseStatements("SELECT 1; SELECT 2; INSERT INTO t VALUES (3);")
	if err != nil {
		t.Fatalf("ParseStatements: %v", err)
	}
	if len(stmts) != 3 {
		t.Errorf("statements = %d, want 3", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"SELECT",
		"SELECT FROM",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t GROUP",
		"SELECT * FROM t ORDER",
		"SELECT * FROM t LIMIT abc",
		"SELECT * FROM t WHERE a NOT 5",
		"INSERT t VALUES (1)",
		"UPDATE t a = 1",
		"CREATE TABLE t",
		"FROBNICATE the database",
		"SELECT * FROM t; garbage",
		"SELECT * FROM t WHERE a IN ()",
		"SELECT CASE END FROM t",
	}
	for _, q := range cases {
		if _, err := Parse(q); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", q)
		}
	}
}

func TestParseErrorMessageHasPosition(t *testing.T) {
	_, err := Parse("SELECT * FROM t WHERE AND")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "line 1") {
		t.Errorf("error %q should mention position", err)
	}
}

func TestParseSelectRejectsNonSelect(t *testing.T) {
	if _, err := ParseSelect("DELETE FROM t"); err == nil {
		t.Error("ParseSelect should reject DELETE")
	}
}

func TestParseMultipleStatementsRejectedByParse(t *testing.T) {
	if _, err := Parse("SELECT 1; SELECT 2"); err == nil {
		t.Error("Parse should reject multiple statements")
	}
}
