package sql

import (
	"strconv"
	"strings"
)

// This file renders AST nodes back into SQL text. The output is a normalised
// spelling (keywords upper-cased, single spaces) which the canonicalizer and
// fingerprint rely on for deterministic round-tripping.

// SQL renders the SELECT statement.
func (s *SelectStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, item := range s.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(item.SQL())
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(t.SQL())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.SQL())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(s.Having.SQL())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.Expr.SQL())
			if o.Desc {
				sb.WriteString(" DESC")
			}
		}
	}
	if s.Limit != nil {
		sb.WriteString(" LIMIT ")
		sb.WriteString(strconv.FormatInt(s.Limit.Count, 10))
		if s.Limit.HasOffset {
			sb.WriteString(" OFFSET ")
			sb.WriteString(strconv.FormatInt(s.Limit.Offset, 10))
		}
	}
	if s.Compound != nil {
		sb.WriteString(" ")
		sb.WriteString(s.Compound.Op)
		if s.Compound.All {
			sb.WriteString(" ALL")
		}
		sb.WriteString(" ")
		sb.WriteString(s.Compound.Right.SQL())
	}
	return sb.String()
}

// SQL renders a SELECT-list item.
func (s SelectItem) SQL() string {
	if s.Star {
		return "*"
	}
	if s.TableStar != "" {
		return s.TableStar + ".*"
	}
	out := s.Expr.SQL()
	if s.Alias != "" {
		out += " AS " + s.Alias
	}
	return out
}

// SQL renders the INSERT statement.
func (s *InsertStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	sb.WriteString(s.Table)
	if len(s.Columns) > 0 {
		sb.WriteString(" (")
		sb.WriteString(strings.Join(s.Columns, ", "))
		sb.WriteString(")")
	}
	if s.Select != nil {
		sb.WriteString(" ")
		sb.WriteString(s.Select.SQL())
		return sb.String()
	}
	sb.WriteString(" VALUES ")
	for i, row := range s.Rows {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		for j, e := range row {
			if j > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.SQL())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// SQL renders the UPDATE statement.
func (s *UpdateStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("UPDATE ")
	sb.WriteString(s.Table)
	sb.WriteString(" SET ")
	for i, a := range s.Set {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Column)
		sb.WriteString(" = ")
		sb.WriteString(a.Value.SQL())
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.SQL())
	}
	return sb.String()
}

// SQL renders the DELETE statement.
func (s *DeleteStmt) SQL() string {
	out := "DELETE FROM " + s.Table
	if s.Where != nil {
		out += " WHERE " + s.Where.SQL()
	}
	return out
}

// SQL renders the CREATE TABLE statement.
func (s *CreateTableStmt) SQL() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	if s.IfNotExists {
		sb.WriteString("IF NOT EXISTS ")
	}
	sb.WriteString(s.Table)
	sb.WriteString(" (")
	for i, c := range s.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(c.Name)
		sb.WriteString(" ")
		sb.WriteString(c.Type)
		if c.PrimaryKey {
			sb.WriteString(" PRIMARY KEY")
		}
		if c.NotNull {
			sb.WriteString(" NOT NULL")
		}
		if c.Unique {
			sb.WriteString(" UNIQUE")
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// SQL renders the DROP TABLE statement.
func (s *DropTableStmt) SQL() string {
	if s.IfExists {
		return "DROP TABLE IF EXISTS " + s.Table
	}
	return "DROP TABLE " + s.Table
}

// SQL renders the ALTER TABLE statement.
func (s *AlterTableStmt) SQL() string {
	switch s.Action {
	case AlterAddColumn:
		return "ALTER TABLE " + s.Table + " ADD COLUMN " + s.Column.Name + " " + s.Column.Type
	case AlterDropColumn:
		return "ALTER TABLE " + s.Table + " DROP COLUMN " + s.OldName
	case AlterRenameColumn:
		return "ALTER TABLE " + s.Table + " RENAME COLUMN " + s.OldName + " TO " + s.NewName
	case AlterRenameTable:
		return "ALTER TABLE " + s.Table + " RENAME TO " + s.NewName
	default:
		return "ALTER TABLE " + s.Table
	}
}

// ---------------------------------------------------------------------------
// Table references
// ---------------------------------------------------------------------------

// SQL renders the base-table reference.
func (t *TableName) SQL() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// SQL renders the join expression.
func (j *JoinExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString(j.Left.SQL())
	sb.WriteString(" ")
	sb.WriteString(j.Type.String())
	sb.WriteString(" ")
	sb.WriteString(j.Right.SQL())
	if j.On != nil {
		sb.WriteString(" ON ")
		sb.WriteString(j.On.SQL())
	} else if len(j.Using) > 0 {
		sb.WriteString(" USING (")
		sb.WriteString(strings.Join(j.Using, ", "))
		sb.WriteString(")")
	}
	return sb.String()
}

// SQL renders the derived-table reference.
func (s *SubqueryRef) SQL() string {
	out := "(" + s.Select.SQL() + ")"
	if s.Alias != "" {
		out += " " + s.Alias
	}
	return out
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// SQL renders the column reference.
func (c *ColumnRef) SQL() string { return c.QualifiedName() }

// SQL renders the literal.
func (l *Literal) SQL() string {
	switch l.Kind {
	case LiteralString:
		return "'" + strings.ReplaceAll(l.Text, "'", "''") + "'"
	case LiteralNull:
		return "NULL"
	case LiteralBool:
		return strings.ToUpper(l.Text)
	default:
		return l.Text
	}
}

// binaryPrec returns a precedence class used only to decide parenthesisation
// when printing nested binary expressions.
func binaryPrec(op string) int {
	switch op {
	case "OR":
		return 1
	case "AND":
		return 2
	case "=", "<>", "<", "<=", ">", ">=", "LIKE":
		return 3
	case "+", "-", "||":
		return 4
	case "*", "/", "%":
		return 5
	default:
		return 6
	}
}

func renderOperand(parent string, e Expr) string {
	if b, ok := e.(*BinaryExpr); ok {
		if binaryPrec(b.Op) < binaryPrec(parent) {
			return "(" + b.SQL() + ")"
		}
	}
	return e.SQL()
}

// SQL renders the binary expression with minimal parentheses.
func (b *BinaryExpr) SQL() string {
	return renderOperand(b.Op, b.Left) + " " + b.Op + " " + renderOperand(b.Op, b.Right)
}

// SQL renders the unary expression.
func (u *UnaryExpr) SQL() string {
	inner := u.Expr.SQL()
	if _, ok := u.Expr.(*BinaryExpr); ok {
		inner = "(" + inner + ")"
	}
	if u.Op == "NOT" {
		return "NOT " + inner
	}
	return u.Op + inner
}

// SQL renders the function call.
func (f *FuncCall) SQL() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.SQL()
	}
	prefix := ""
	if f.Distinct {
		prefix = "DISTINCT "
	}
	return f.Name + "(" + prefix + strings.Join(args, ", ") + ")"
}

// SQL renders the IN expression.
func (in *InExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString(in.Expr.SQL())
	if in.Not {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	if in.Select != nil {
		sb.WriteString(in.Select.SQL())
	} else {
		for i, e := range in.List {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.SQL())
		}
	}
	sb.WriteString(")")
	return sb.String()
}

// SQL renders the BETWEEN expression.
func (b *BetweenExpr) SQL() string {
	not := ""
	if b.Not {
		not = " NOT"
	}
	return b.Expr.SQL() + not + " BETWEEN " + b.Low.SQL() + " AND " + b.High.SQL()
}

// SQL renders the LIKE expression.
func (l *LikeExpr) SQL() string {
	not := ""
	if l.Not {
		not = " NOT"
	}
	return l.Expr.SQL() + not + " LIKE " + l.Pattern.SQL()
}

// SQL renders the IS NULL expression.
func (i *IsNullExpr) SQL() string {
	if i.Not {
		return i.Expr.SQL() + " IS NOT NULL"
	}
	return i.Expr.SQL() + " IS NULL"
}

// SQL renders the EXISTS expression.
func (e *ExistsExpr) SQL() string {
	if e.Not {
		return "NOT EXISTS (" + e.Select.SQL() + ")"
	}
	return "EXISTS (" + e.Select.SQL() + ")"
}

// SQL renders the scalar sub-query.
func (s *SubqueryExpr) SQL() string { return "(" + s.Select.SQL() + ")" }

// SQL renders the CASE expression.
func (c *CaseExpr) SQL() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		sb.WriteString(" ")
		sb.WriteString(c.Operand.SQL())
	}
	for _, w := range c.Whens {
		sb.WriteString(" WHEN ")
		sb.WriteString(w.When.SQL())
		sb.WriteString(" THEN ")
		sb.WriteString(w.Then.SQL())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE ")
		sb.WriteString(c.Else.SQL())
	}
	sb.WriteString(" END")
	return sb.String()
}

// SQL renders the parameter placeholder.
func (p *ParamExpr) SQL() string { return p.Text }
