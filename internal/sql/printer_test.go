package sql

import (
	"testing"
)

// TestRoundTrip checks that parse → print → parse → print is a fixpoint:
// printing a parsed statement and re-parsing it yields the same text.
func TestRoundTrip(t *testing.T) {
	cases := []string{
		"SELECT a, b FROM t WHERE a = 1",
		"SELECT * FROM WaterSalinity S, WaterTemp T WHERE S.loc_x = T.loc_x AND T.temp < 18",
		"SELECT DISTINCT lake FROM WaterTemp ORDER BY lake",
		"SELECT lake, AVG(temp) AS avg_temp FROM WaterTemp GROUP BY lake HAVING AVG(temp) > 10 ORDER BY avg_temp DESC LIMIT 10",
		"SELECT city FROM CityLocations WHERE city IN (SELECT city FROM Cities WHERE state = 'WA')",
		"SELECT * FROM a LEFT JOIN b ON a.x = b.x JOIN c ON b.y = c.y",
		"SELECT * FROM (SELECT lake FROM WaterTemp) sub WHERE lake LIKE 'Lake%'",
		"SELECT CASE WHEN temp > 20 THEN 'warm' ELSE 'cold' END AS label FROM WaterTemp",
		"SELECT a FROM t UNION SELECT a FROM u",
		"SELECT COUNT(*) FROM t WHERE a BETWEEN 1 AND 10",
		"SELECT * FROM t WHERE a IS NOT NULL AND b NOT IN (1, 2)",
		"SELECT -salinity + 3.5 * depth FROM WaterSalinity",
		"INSERT INTO t (a, b) VALUES (1, 'x')",
		"UPDATE t SET a = a + 1 WHERE id = 3",
		"DELETE FROM t WHERE id = 3",
		"CREATE TABLE t (id INT PRIMARY KEY, name TEXT NOT NULL)",
		"DROP TABLE IF EXISTS t",
		"ALTER TABLE t RENAME COLUMN a TO b",
	}
	for _, q := range cases {
		stmt1, err := Parse(q)
		if err != nil {
			t.Errorf("Parse(%q): %v", q, err)
			continue
		}
		text1 := stmt1.SQL()
		stmt2, err := Parse(text1)
		if err != nil {
			t.Errorf("re-Parse(%q): %v", text1, err)
			continue
		}
		text2 := stmt2.SQL()
		if text1 != text2 {
			t.Errorf("round trip not stable:\n  first:  %s\n  second: %s", text1, text2)
		}
	}
}

func TestPrinterNormalizesCase(t *testing.T) {
	canon, err := Canonical("select   a from t where a=1")
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	want := "SELECT a FROM t WHERE a = 1"
	if canon != want {
		t.Errorf("Canonical = %q, want %q", canon, want)
	}
}

func TestPrinterParenthesizesPrecedence(t *testing.T) {
	// (a OR b) AND c must keep its parentheses when printed.
	sel := mustParseSelect(t, "SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
	out := sel.SQL()
	reparsed := mustParseSelect(t, out)
	and, ok := reparsed.Where.(*BinaryExpr)
	if !ok || and.Op != "AND" {
		t.Fatalf("reparsed where = %#v, want AND at top", reparsed.Where)
	}
	if or, ok := and.Left.(*BinaryExpr); !ok || or.Op != "OR" {
		t.Errorf("left of AND = %#v, want OR", and.Left)
	}
}

func TestPrinterStringEscaping(t *testing.T) {
	sel := mustParseSelect(t, "SELECT * FROM t WHERE name = 'O''Brien'")
	out := sel.SQL()
	reparsed := mustParseSelect(t, out)
	cmp := reparsed.Where.(*BinaryExpr)
	lit := cmp.Right.(*Literal)
	if lit.Text != "O'Brien" {
		t.Errorf("literal = %q, want O'Brien", lit.Text)
	}
}

func TestJoinTypeString(t *testing.T) {
	cases := map[JoinType]string{
		JoinInner: "JOIN",
		JoinLeft:  "LEFT JOIN",
		JoinRight: "RIGHT JOIN",
		JoinFull:  "FULL JOIN",
		JoinCross: "CROSS JOIN",
	}
	for jt, want := range cases {
		if jt.String() != want {
			t.Errorf("JoinType(%d).String() = %q, want %q", jt, jt.String(), want)
		}
	}
}

func TestSelectItemSQL(t *testing.T) {
	cases := []struct {
		item SelectItem
		want string
	}{
		{SelectItem{Star: true}, "*"},
		{SelectItem{TableStar: "t"}, "t.*"},
		{SelectItem{Expr: &ColumnRef{Name: "a"}, Alias: "x"}, "a AS x"},
	}
	for _, c := range cases {
		if got := c.item.SQL(); got != c.want {
			t.Errorf("SQL() = %q, want %q", got, c.want)
		}
	}
}
