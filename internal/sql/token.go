// Package sql implements a lexer, parser, AST and utilities for the SQL
// subset used throughout the CQMS: SELECT queries with joins, nested
// sub-queries, grouping, ordering and limits, plus the DML and DDL statements
// needed by the profiler, the workload generator and the maintenance
// component (INSERT, UPDATE, DELETE, CREATE/DROP/ALTER TABLE).
//
// The package is the syntactic substrate of the system described in
// "A Case for A Collaborative Query Management System" (CIDR 2009): every
// query logged by the Query Profiler is parsed here, and every syntactic
// query feature stored in the Query Storage is extracted from these ASTs.
package sql

import "fmt"

// TokenKind identifies the lexical class of a token.
type TokenKind int

// Token kinds produced by the Lexer.
const (
	TokenEOF TokenKind = iota
	TokenIdent
	TokenQuotedIdent
	TokenKeyword
	TokenNumber
	TokenString
	TokenOperator
	TokenComma
	TokenLParen
	TokenRParen
	TokenDot
	TokenSemicolon
	TokenStar
	TokenParam // placeholder parameter such as ? or $1
)

var tokenKindNames = map[TokenKind]string{
	TokenEOF:         "EOF",
	TokenIdent:       "identifier",
	TokenQuotedIdent: "quoted identifier",
	TokenKeyword:     "keyword",
	TokenNumber:      "number",
	TokenString:      "string",
	TokenOperator:    "operator",
	TokenComma:       "comma",
	TokenLParen:      "left paren",
	TokenRParen:      "right paren",
	TokenDot:         "dot",
	TokenSemicolon:   "semicolon",
	TokenStar:        "star",
	TokenParam:       "parameter",
}

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	if s, ok := tokenKindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is a single lexical token with its position in the input.
type Token struct {
	Kind TokenKind
	// Text is the raw text of the token. For keywords it is upper-cased;
	// for quoted identifiers the quotes are stripped.
	Text string
	// Pos is the byte offset of the first character of the token.
	Pos int
	// Line and Col are 1-based line and column numbers for error messages.
	Line int
	Col  int
}

// String renders the token for diagnostics.
func (t Token) String() string {
	if t.Kind == TokenEOF {
		return "EOF"
	}
	return fmt.Sprintf("%s %q", t.Kind, t.Text)
}

// keywords is the set of reserved words recognised by the lexer. The value
// is always true; membership is what matters.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true,
	"ASC": true, "DESC": true, "DISTINCT": true, "ALL": true,
	"AS": true, "ON": true, "USING": true,
	"JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true, "FULL": true,
	"OUTER": true, "CROSS": true, "NATURAL": true,
	"AND": true, "OR": true, "NOT": true,
	"IN": true, "BETWEEN": true, "LIKE": true, "IS": true, "NULL": true,
	"EXISTS": true, "ANY": true, "SOME": true,
	"TRUE": true, "FALSE": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"INSERT": true, "INTO": true, "VALUES": true,
	"UPDATE": true, "SET": true, "DELETE": true,
	"CREATE": true, "TABLE": true, "DROP": true, "ALTER": true,
	"ADD": true, "COLUMN": true, "RENAME": true, "TO": true,
	"PRIMARY": true, "KEY": true, "UNIQUE": true,
	"INT": true, "INTEGER": true, "BIGINT": true, "FLOAT": true,
	"DOUBLE": true, "REAL": true, "TEXT": true, "VARCHAR": true,
	"CHAR": true, "BOOLEAN": true, "BOOL": true, "TIMESTAMP": true,
	"DATE":  true,
	"UNION": true, "EXCEPT": true, "INTERSECT": true,
	"IF": true,
}

// IsKeyword reports whether the upper-cased word is a reserved SQL keyword
// in this dialect.
func IsKeyword(word string) bool {
	return keywords[word]
}
