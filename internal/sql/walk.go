package sql

// Visitor is called for every expression node reachable from a statement or
// expression. Returning false stops descent into the node's children.
type Visitor func(e Expr) bool

// WalkExpr applies v to e and, unless v returns false, to all of e's child
// expressions (including expressions inside nested sub-queries).
func WalkExpr(e Expr, v Visitor) {
	if e == nil {
		return
	}
	if !v(e) {
		return
	}
	switch n := e.(type) {
	case *BinaryExpr:
		WalkExpr(n.Left, v)
		WalkExpr(n.Right, v)
	case *UnaryExpr:
		WalkExpr(n.Expr, v)
	case *FuncCall:
		for _, a := range n.Args {
			WalkExpr(a, v)
		}
	case *InExpr:
		WalkExpr(n.Expr, v)
		for _, item := range n.List {
			WalkExpr(item, v)
		}
		if n.Select != nil {
			WalkSelectExprs(n.Select, v)
		}
	case *BetweenExpr:
		WalkExpr(n.Expr, v)
		WalkExpr(n.Low, v)
		WalkExpr(n.High, v)
	case *LikeExpr:
		WalkExpr(n.Expr, v)
		WalkExpr(n.Pattern, v)
	case *IsNullExpr:
		WalkExpr(n.Expr, v)
	case *ExistsExpr:
		if n.Select != nil {
			WalkSelectExprs(n.Select, v)
		}
	case *SubqueryExpr:
		if n.Select != nil {
			WalkSelectExprs(n.Select, v)
		}
	case *CaseExpr:
		WalkExpr(n.Operand, v)
		for _, w := range n.Whens {
			WalkExpr(w.When, v)
			WalkExpr(w.Then, v)
		}
		WalkExpr(n.Else, v)
	}
}

// WalkSelectExprs applies v to every expression appearing anywhere in the
// SELECT statement, including within derived tables and chained set
// operations.
func WalkSelectExprs(s *SelectStmt, v Visitor) {
	if s == nil {
		return
	}
	for _, item := range s.Columns {
		if item.Expr != nil {
			WalkExpr(item.Expr, v)
		}
	}
	for _, t := range s.From {
		walkTableRefExprs(t, v)
	}
	WalkExpr(s.Where, v)
	for _, g := range s.GroupBy {
		WalkExpr(g, v)
	}
	WalkExpr(s.Having, v)
	for _, o := range s.OrderBy {
		WalkExpr(o.Expr, v)
	}
	if s.Compound != nil {
		WalkSelectExprs(s.Compound.Right, v)
	}
}

func walkTableRefExprs(t TableRef, v Visitor) {
	switch ref := t.(type) {
	case *JoinExpr:
		walkTableRefExprs(ref.Left, v)
		walkTableRefExprs(ref.Right, v)
		WalkExpr(ref.On, v)
	case *SubqueryRef:
		WalkSelectExprs(ref.Select, v)
	}
}

// TableRefVisitor is called for every TableRef in a FROM clause tree.
type TableRefVisitor func(t TableRef) bool

// WalkTableRefs applies v to every table reference in the statement's FROM
// clauses, including those of nested sub-queries in FROM position.
func WalkTableRefs(s *SelectStmt, v TableRefVisitor) {
	if s == nil {
		return
	}
	for _, t := range s.From {
		walkTableRef(t, v)
	}
	if s.Compound != nil {
		WalkTableRefs(s.Compound.Right, v)
	}
}

func walkTableRef(t TableRef, v TableRefVisitor) {
	if t == nil || !v(t) {
		return
	}
	switch ref := t.(type) {
	case *JoinExpr:
		walkTableRef(ref.Left, v)
		walkTableRef(ref.Right, v)
	case *SubqueryRef:
		WalkTableRefs(ref.Select, v)
	}
}

// Subqueries returns every SELECT nested anywhere inside s (derived tables,
// IN/EXISTS/scalar sub-queries and set-operation branches), not including s
// itself.
func Subqueries(s *SelectStmt) []*SelectStmt {
	var out []*SelectStmt
	collectSubqueries(s, &out, false)
	return out
}

func collectSubqueries(s *SelectStmt, out *[]*SelectStmt, includeSelf bool) {
	if s == nil {
		return
	}
	if includeSelf {
		*out = append(*out, s)
	}
	for _, t := range s.From {
		collectTableRefSubqueries(t, out)
	}
	collectExprSubqueries(s.Where, out)
	collectExprSubqueries(s.Having, out)
	for _, item := range s.Columns {
		collectExprSubqueries(item.Expr, out)
	}
	if s.Compound != nil {
		collectSubqueries(s.Compound.Right, out, true)
	}
}

func collectTableRefSubqueries(t TableRef, out *[]*SelectStmt) {
	switch ref := t.(type) {
	case *JoinExpr:
		collectTableRefSubqueries(ref.Left, out)
		collectTableRefSubqueries(ref.Right, out)
		collectExprSubqueries(ref.On, out)
	case *SubqueryRef:
		collectSubqueries(ref.Select, out, true)
	}
}

func collectExprSubqueries(e Expr, out *[]*SelectStmt) {
	WalkExpr(e, func(e Expr) bool {
		switch n := e.(type) {
		case *InExpr:
			if n.Select != nil {
				collectSubqueries(n.Select, out, true)
			}
		case *ExistsExpr:
			collectSubqueries(n.Select, out, true)
		case *SubqueryExpr:
			collectSubqueries(n.Select, out, true)
		}
		return true
	})
}
