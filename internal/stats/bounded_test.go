package stats_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/wal"
)

// principalsOf returns the principals every contract check runs under: admin,
// each vocabulary user, and a stranger with no queries.
func principalsOf() []storage.Principal {
	ps := []storage.Principal{admin, {User: "eve"}}
	for _, u := range users {
		ps = append(ps, storage.Principal{User: u, Groups: []string{"limnology"}})
	}
	return ps
}

// assertBoundedContract verifies the approximation contract of the bounded
// listing reads against an exact reference (a default-capacity rebuild, whose
// summaries never overflow on the test vocabulary):
//
//   - every item a bounded listing reports carries its exact count, and
//   - every item with true count above the reported miss bound appears, and
//   - a zero bound means the listing is the complete exact listing.
func assertBoundedContract(t *testing.T, live *stats.Tracker, store *storage.Store) {
	t.Helper()
	exact := stats.New()
	exact.Rebuild(store)
	for _, p := range principalsOf() {
		bounds := live.Bounds(p)

		// Tables.
		wantTables := make(map[string]int)
		for _, tc := range exact.TableCounts(p) {
			wantTables[tc.Table] = tc.Count
		}
		gotTables := make(map[string]int)
		for _, tc := range live.TableCounts(p) {
			gotTables[tc.Table] = tc.Count
		}
		checkListing(t, p, "tables", gotTables, wantTables, bounds.Tables)
		if bounds.Tables == 0 && !reflect.DeepEqual(live.TableCounts(p), exact.TableCounts(p)) {
			t.Errorf("principal %+v: zero table bound but listings differ", p)
		}

		// Users.
		wantUsers := make(map[string]int)
		for _, uc := range exact.UserActivity(p) {
			wantUsers[uc.User] = uc.Queries
		}
		gotUsers := make(map[string]int)
		for _, uc := range live.UserActivity(p) {
			gotUsers[uc.User] = uc.Queries
		}
		checkListing(t, p, "users", gotUsers, wantUsers, bounds.Users)

		// Predicates: the exact reference is the full counter map.
		gotPreds := make(map[string]int)
		for _, ic := range live.TopPredicates(p, 0) {
			gotPreds[ic.Item] = ic.Count
		}
		checkListing(t, p, "predicates", gotPreds, exact.GlobalPredicateCounts(p), bounds.Predicates)

		// Fingerprints.
		wantFPs := exact.FingerprintCounts(p)
		gotFPs := make(map[uint64]int)
		for _, fc := range live.TopFingerprints(p, 0) {
			gotFPs[fc.Fingerprint] = fc.Count
		}
		checkListing(t, p, "fingerprints", gotFPs, wantFPs, bounds.Fingerprints)

		// The popularity normaliser may undershoot by at most the bound.
		trueMax := 0
		for _, n := range wantFPs {
			if n > trueMax {
				trueMax = n
			}
		}
		if gotMax := live.MaxFingerprintCount(p); gotMax > trueMax || gotMax < trueMax-bounds.Fingerprints {
			t.Errorf("principal %+v: MaxFingerprintCount = %d, true max %d, bound %d",
				p, gotMax, trueMax, bounds.Fingerprints)
		}
	}
}

// checkListing asserts one bounded listing against its exact counts: reported
// counts exact, omissions only below the bound.
func checkListing[K comparable](t *testing.T, p storage.Principal, dim string, got, want map[K]int, bound int) {
	t.Helper()
	for key, n := range got {
		if want[key] != n {
			t.Errorf("principal %+v %s: listed %v with count %d, exact is %d", p, dim, key, n, want[key])
		}
	}
	for key, n := range want {
		if _, ok := got[key]; !ok && n > bound {
			t.Errorf("principal %+v %s: %v with count %d missing from listing (bound %d)",
				p, dim, key, n, bound)
		}
	}
}

// TestBoundedListingContract forces evictions with tiny summary capacities
// over random mutation histories and checks the approximation contract the
// API documents.
func TestBoundedListingContract(t *testing.T) {
	for _, capacity := range []int{2, 4, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("capacity=%d/seed=%d", capacity, seed), func(t *testing.T) {
				rng := rand.New(rand.NewSource(seed))
				store := storage.NewStore()
				live := stats.AttachWithCapacity(store, capacity)
				mutateRandomly(t, rng, store, 300)
				if live.Capacity() != capacity {
					t.Fatalf("Capacity() = %d, want %d", live.Capacity(), capacity)
				}
				assertBoundedContract(t, live, store)
			})
		}
	}
}

// TestBoundedContractAfterWALRecovery proves the contract survives a crash:
// the recovered tracker (checkpoint sidecar restore, or snapshot Reset, plus
// tail replay) still reports exact counts within valid bounds, and its exact
// counter surfaces equal the pre-crash ones.
func TestBoundedContractAfterWALRecovery(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(21))

	store1 := storage.NewStore()
	tracker1 := stats.AttachWithCapacity(store1, 4)
	cfg := wal.DefaultConfig(dir)
	cfg.SyncPolicy = "off"
	mgr1, _, err := wal.Open(store1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mutateRandomly(t, rng, store1, 200)
	// Snapshot mid-history so recovery exercises sidecar restore + tail
	// replay; the tail keeps maintaining the reseeded summaries.
	if _, _, err := mgr1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	mutateRandomly(t, rng, store1, 100)
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}
	preFPs := tracker1.FingerprintCounts(admin)
	prePreds := tracker1.GlobalPredicateCounts(admin)

	store2 := storage.NewStore()
	tracker2 := stats.AttachWithCapacity(store2, 4)
	mgr2, _, err := wal.Open(store2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	assertBoundedContract(t, tracker2, store2)
	// The exact counter surfaces are bit-identical across the crash; only
	// summary membership (which stays within bounds) may differ.
	if !reflect.DeepEqual(preFPs, tracker2.FingerprintCounts(admin)) {
		t.Error("fingerprint counts changed across recovery")
	}
	if !reflect.DeepEqual(prePreds, tracker2.GlobalPredicateCounts(admin)) {
		t.Error("predicate counts changed across recovery")
	}
}

// TestBoundedContractAfterCheckpointRestore round-trips the tracker's own
// checkpoint sidecar at small capacity: the restored tracker reseeds its
// summaries from the exact maps (version stays 1) and must satisfy the
// contract with bounds no looser than the donor's.
func TestBoundedContractAfterCheckpointRestore(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	store := storage.NewStore()
	tracker1 := stats.AttachWithCapacity(store, 4)
	mutateRandomly(t, rng, store, 250)

	version, data, err := tracker1.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if version != stats.CheckpointVersion {
		t.Fatalf("checkpoint version %d, want %d", version, stats.CheckpointVersion)
	}
	tracker2 := stats.NewWithCapacity(4)
	if err := tracker2.Restore(version, data); err != nil {
		t.Fatal(err)
	}
	assertBoundedContract(t, tracker2, store)
	for _, p := range principalsOf() {
		if got, want := tracker2.QueryCount(p), tracker1.QueryCount(p); got != want {
			t.Errorf("principal %+v: restored QueryCount = %d, want %d", p, got, want)
		}
		if !reflect.DeepEqual(tracker2.FingerprintCounts(p), tracker1.FingerprintCounts(p)) {
			t.Errorf("principal %+v: restored fingerprint counts differ", p)
		}
		// Reseeding from the exact maps yields the tightest bounds possible,
		// never looser than the incrementally maintained donor's.
		got, want := tracker2.Bounds(p), tracker1.Bounds(p)
		if got.Tables > want.Tables || got.Users > want.Users ||
			got.Predicates > want.Predicates || got.Fingerprints > want.Fingerprints {
			t.Errorf("principal %+v: restored bounds %+v looser than donor %+v", p, got, want)
		}
	}
}

// TestConcurrentBoundedReads drives the bounded read API concurrently with
// writers at small capacity; under -race it proves the locking of the new
// read paths, and the contract is re-checked once writers quiesce.
func TestConcurrentBoundedReads(t *testing.T) {
	store := storage.NewStore()
	tracker := stats.AttachWithCapacity(store, 4)
	rng := rand.New(rand.NewSource(123))
	mutateRandomly(t, rng, store, 50)

	var readers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			p := storage.Principal{User: users[r%len(users)]}
			if r == 0 {
				p = admin
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				tracker.TableCounts(p)
				tracker.UserActivity(p)
				tracker.TopPredicates(p, 10)
				tracker.TopFingerprints(p, 10)
				tracker.MaxFingerprintCount(p)
				tracker.FingerprintCountsFor(p, []uint64{1, 2, 3})
				tracker.Bounds(p)
			}
		}(r)
	}
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			wrng := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				store.Put(genRecord(t, wrng))
			}
		}(int64(w + 1))
	}
	writers.Wait()
	close(stop)
	readers.Wait()
	assertBoundedContract(t, tracker, store)
}
