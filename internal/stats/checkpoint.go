package stats

import (
	"encoding/json"
	"fmt"
	"strconv"
)

// CheckpointVersion is the serialization version of the tracker's checkpoint
// format. Bump it when the counter layout changes; Restore rejects versions
// it does not understand and the bus falls back to a full rebuild.
const CheckpointVersion = 1

// The *State types mirror the in-memory counter structures with JSON tags.
// Fingerprints are uint64 map keys, which encoding/json cannot round-trip as
// object keys, so they travel hex-encoded.

type itemCountState struct {
	Count int    `json:"c"`
	Rel   string `json:"r,omitempty"`
}

type joinCountState struct {
	Count int    `json:"c"`
	Left  string `json:"l,omitempty"`
	Right string `json:"r,omitempty"`
}

type tableAggState struct {
	Count int                       `json:"count"`
	Names map[string]int            `json:"names,omitempty"`
	Attrs map[string]itemCountState `json:"attrs,omitempty"`
	Preds map[string]itemCountState `json:"preds,omitempty"`
	Joins map[string]joinCountState `json:"joins,omitempty"`
}

type bucketState struct {
	Queries      int                      `json:"queries"`
	Users        map[string]int           `json:"users,omitempty"`
	Fingerprints map[string]int           `json:"fingerprints,omitempty"`
	Tables       map[string]tableAggState `json:"tables,omitempty"`
	Preds        map[string]int           `json:"preds,omitempty"`
}

type checkpointState struct {
	All    bucketState            `json:"all"`
	Public bucketState            `json:"public"`
	Owners map[string]bucketState `json:"owners,omitempty"`
}

func (b *bucket) state() bucketState {
	st := bucketState{
		Queries:      b.queries,
		Users:        b.users,
		Preds:        b.preds,
		Fingerprints: make(map[string]int, len(b.fingerprints)),
		Tables:       make(map[string]tableAggState, len(b.tables)),
	}
	for fp, n := range b.fingerprints {
		st.Fingerprints[strconv.FormatUint(fp, 16)] = n
	}
	for key, ta := range b.tables {
		tas := tableAggState{
			Count: ta.count,
			Names: ta.names,
			Attrs: make(map[string]itemCountState, len(ta.attrs)),
			Preds: make(map[string]itemCountState, len(ta.preds)),
			Joins: make(map[string]joinCountState, len(ta.joins)),
		}
		for k, ic := range ta.attrs {
			tas.Attrs[k] = itemCountState{Count: ic.count, Rel: ic.rel}
		}
		for k, ic := range ta.preds {
			tas.Preds[k] = itemCountState{Count: ic.count, Rel: ic.rel}
		}
		for k, jc := range ta.joins {
			tas.Joins[k] = joinCountState{Count: jc.count, Left: jc.left, Right: jc.right}
		}
		st.Tables[key] = tas
	}
	return st
}

// bucketFromState rebuilds one bucket from its checkpointed exact counters.
// The top-K summaries are not serialised — they are derived state over the
// maps — so they are reseeded from the restored counts, which gives the
// recovered summaries exact top-capacity membership and the tightest miss
// bound; the WAL tail replay then maintains them incrementally. Restore
// therefore stays O(checkpoint size + tail), and version-1 sidecars written
// before the summaries existed restore unchanged.
func bucketFromState(st bucketState, capacity int) (*bucket, error) {
	b := newBucket(capacity)
	b.queries = st.Queries
	for user, n := range st.Users {
		b.users[user] = n
	}
	for hexFP, n := range st.Fingerprints {
		fp, err := strconv.ParseUint(hexFP, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("stats: checkpoint fingerprint %q: %w", hexFP, err)
		}
		b.fingerprints[fp] = n
	}
	for text, n := range st.Preds {
		b.preds[text] = n
	}
	for key, tas := range st.Tables {
		ta := newTableAgg()
		ta.count = tas.Count
		for name, n := range tas.Names {
			ta.names[name] = n
		}
		for k, ic := range tas.Attrs {
			ta.attrs[k] = &itemCount{count: ic.Count, rel: ic.Rel}
		}
		for k, ic := range tas.Preds {
			ta.preds[k] = &itemCount{count: ic.Count, rel: ic.Rel}
		}
		for k, jc := range tas.Joins {
			ta.joins[k] = &joinCount{count: jc.Count, left: jc.Left, right: jc.Right}
		}
		b.tables[key] = ta
	}
	b.reseed(capacity)
	return b, nil
}

// Checkpoint serialises the tracker's counters. It is the tracker's
// contribution to WAL snapshot sidecars and runs in the store's
// StateWithCheckpoints critical section, so the counters describe exactly
// the snapshotted records.
func (t *Tracker) Checkpoint() (int, []byte, error) {
	t.mu.RLock()
	st := checkpointState{
		All:    t.all.state(),
		Public: t.public.state(),
		Owners: make(map[string]bucketState, len(t.owners)),
	}
	for user, b := range t.owners {
		st.Owners[user] = b.state()
	}
	// Marshal before releasing the lock: state() aliases the live counter
	// maps rather than copying them, so a mutation landing mid-Marshal would
	// otherwise tear the checkpoint (or panic the encoder).
	data, err := json.Marshal(st)
	t.mu.RUnlock()
	if err != nil {
		return 0, nil, fmt.Errorf("stats: encoding checkpoint: %w", err)
	}
	return CheckpointVersion, data, nil
}

// Restore replaces the tracker's counters with a previously checkpointed
// state. An unknown version or a decode failure is returned as an error so
// the caller (the mutation bus) falls back to a full rebuild.
func (t *Tracker) Restore(version int, data []byte) error {
	if version != CheckpointVersion {
		return fmt.Errorf("stats: unknown checkpoint version %d", version)
	}
	var st checkpointState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("stats: decoding checkpoint: %w", err)
	}
	all, err := bucketFromState(st.All, t.capacity)
	if err != nil {
		return err
	}
	public, err := bucketFromState(st.Public, t.capacity)
	if err != nil {
		return err
	}
	owners := make(map[string]*bucket, len(st.Owners))
	for user, bs := range st.Owners {
		b, err := bucketFromState(bs, t.capacity)
		if err != nil {
			return err
		}
		owners[user] = b
	}
	t.mu.Lock()
	t.all, t.public, t.owners = all, public, owners
	t.mu.Unlock()
	return nil
}
