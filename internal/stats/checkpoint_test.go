package stats_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/wal"
)

// TestCheckpointRoundTrip proves Checkpoint/Restore is lossless: after an
// arbitrary mutation history, a tracker restored from the serialized
// checkpoint reports exactly what the live tracker reports, for every
// principal and table context.
func TestCheckpointRoundTrip(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			store := storage.NewStore()
			tracker := stats.Attach(store)
			mutateRandomly(t, rng, store, 300)

			version, data, err := tracker.Checkpoint()
			if err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			restored := stats.New()
			if err := restored.Restore(version, data); err != nil {
				t.Fatalf("Restore: %v", err)
			}
			var allTables []string
			for _, tc := range tracker.TableCounts(admin) {
				allTables = append(allTables, tc.Table)
			}
			principals := []storage.Principal{admin, {User: "eve"}}
			for _, u := range users {
				principals = append(principals, storage.Principal{User: u, Groups: []string{"limnology"}})
			}
			for _, p := range principals {
				got := observe(restored, p, allTables)
				want := observe(tracker, p, allTables)
				if !reflect.DeepEqual(got, want) {
					t.Errorf("principal %+v: restored counters diverge\n got: %+v\nwant: %+v", p, got, want)
				}
			}
		})
	}
}

// TestRestoreRejectsUnknownVersion pins the fallback contract: an unknown
// checkpoint version is an error (the bus then rebuilds), not a misread.
func TestRestoreRejectsUnknownVersion(t *testing.T) {
	tracker := stats.New()
	if err := tracker.Restore(stats.CheckpointVersion+1, []byte("{}")); err == nil {
		t.Fatal("Restore accepted an unknown version")
	}
	if err := tracker.Restore(stats.CheckpointVersion, []byte("not json")); err == nil {
		t.Fatal("Restore accepted malformed data")
	}
}

// TestEquivalenceAfterCheckpointedRecovery is the end-to-end stats property
// of the durable-derived-state design: recovery from a snapshot whose
// sidecar carries the tracker's checkpoint, plus a WAL tail replayed on top,
// yields counters identical to a from-scratch rebuild — without the tracker
// ever scanning the restored store.
func TestEquivalenceAfterCheckpointedRecovery(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(11))

	store1 := storage.NewStore()
	stats.Attach(store1)
	cfg := wal.DefaultConfig(dir)
	cfg.SyncPolicy = "off"
	mgr1, _, err := wal.Open(store1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mutateRandomly(t, rng, store1, 200)
	// The snapshot now carries the stats sidecar; the tail after it must be
	// replayed into the restored counters.
	if _, _, err := mgr1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	mutateRandomly(t, rng, store1, 100)
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}

	store2 := storage.NewStore()
	tracker2 := stats.Attach(store2)
	mgr2, info, err := wal.Open(store2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	found := false
	for _, name := range info.CheckpointRestored {
		if name == "stats" {
			found = true
		}
	}
	if !found {
		t.Fatalf("stats not restored from checkpoint: restored=%v rebuilt=%v",
			info.CheckpointRestored, info.CheckpointRebuilt)
	}
	assertMatchesRebuild(t, tracker2, store2)
}
