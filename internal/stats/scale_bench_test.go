package stats

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strconv"
	"testing"

	"repro/internal/storage"
)

// buildLoadedTracker feeds n synthetic public records with n distinct users
// (plus proportionally large predicate and fingerprint vocabularies) straight
// into a tracker's apply path, bypassing the store so the benchmark isolates
// the stats layer. Records are public, so they land in the all + public
// buckets — the merge shape an admin read and a user read both see.
func buildLoadedTracker(n int) *Tracker {
	t := New()
	tables := []string{"WaterTemp", "WaterSalinity", "CityLocations", "Sensors",
		"Stars", "Observations", "Lakes", "Surveys"}
	for i := 0; i < n; i++ {
		rec := &storage.QueryRecord{
			ID:          storage.QueryID(i + 1),
			User:        fmt.Sprintf("user%07d", i),
			Fingerprint: uint64(i%(n/10+1)) + 1,
			Visibility:  storage.VisibilityPublic,
			Tables:      []string{tables[i%len(tables)]},
			Predicates: []storage.PredicateRow{
				{Attr: "temp", Op: "<", Const: strconv.Itoa(i % (n/5 + 1))},
			},
		}
		t.addLocked(rec)
	}
	return t
}

// BenchmarkStatsReadAt1MUsers measures the bounded listing reads against
// trackers holding 10^3 vs 10^6 distinct users. The sub-linear claim of the
// top-K summaries is that the two sub-benchmarks stay within the same
// envelope (the reads merge at most capacity tracked keys per bucket, never
// the full maps); the CI perf gate holds each against its own baseline.
func BenchmarkStatsReadAt1MUsers(b *testing.B) {
	admin := storage.Principal{Admin: true}
	for _, n := range []int{1_000, 1_000_000} {
		b.Run(fmt.Sprintf("users=%d", n), func(b *testing.B) {
			tr := buildLoadedTracker(n)
			user := storage.Principal{User: "user0000001"}
			// Reads allocate only O(capacity) per call, but at default GOGC
			// the timed loop would also pay GC mark assists proportional to
			// the tracker's resident maps — a process-wide amortised cost,
			// not read latency. Flush the setup garbage and raise the GC
			// target for the timed window so both population sizes measure
			// the same thing; the defer restores it between rounds.
			runtime.GC()
			defer debug.SetGCPercent(debug.SetGCPercent(1000))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tr.UserActivity(admin)
				tr.TableCounts(admin)
				tr.TopPredicates(admin, 20)
				tr.TopFingerprints(admin, 20)
				tr.Bounds(admin)
				tr.UserActivity(user)
			}
		})
	}
}
