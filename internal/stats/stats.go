// Package stats maintains incrementally updated, visibility-aware aggregates
// over the query log: per-(table, attribute) selection counts, per-(table,
// concrete-predicate) and join-predicate counts, fingerprint popularity and
// per-user/table activity. A Tracker subscribes to the storage mutation
// event bus, so every counter is adjusted in commit order as mutations are
// applied — the recommendation hot path reads O(candidates) counters instead
// of re-scanning the log per keystroke, which is the incremental-propagation
// argument of Youtopia's cooperative update-exchange model applied to the
// CQMS's derived state.
//
// Visibility model: counters are kept in buckets. The `all` bucket holds
// every record and serves admin principals; the `public` bucket holds
// VisibilityPublic records; one bucket per user holds that user's non-public
// records. A non-admin principal reads the public bucket merged with their
// own bucket. Group-visible queries of *other* users are therefore not
// counted for a group member — the tracker trades that sliver of visibility
// for O(1) bucket merges; endpoints that return actual records still enforce
// visibility exactly.
package stats

import (
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/storage"
	"repro/internal/telemetry"
)

// itemCount is one counted completion candidate (an attribute or a
// predicate), remembering the lower-cased qualifying relation so reads can
// apply the recommender's context filter without reparsing the key.
type itemCount struct {
	count int
	rel   string // lower-cased qualifying relation, "" when unqualified
}

// joinCount is one counted join predicate with the lower-cased relation keys
// of its two sides.
type joinCount struct {
	count       int
	left, right string
}

// tableAgg aggregates everything about the queries referencing one table.
type tableAgg struct {
	count int            // queries referencing the table
	names map[string]int // live display casings
	attrs map[string]*itemCount
	preds map[string]*itemCount
	joins map[string]*joinCount
}

func newTableAgg() *tableAgg {
	return &tableAgg{
		names: make(map[string]int),
		attrs: make(map[string]*itemCount),
		preds: make(map[string]*itemCount),
		joins: make(map[string]*joinCount),
	}
}

// bucket is one visibility bucket of counters. Next to the exact counter
// maps it maintains one bounded top-K summary per listed dimension (see
// topk.go), so the listing reads — top tables, top users, top predicates,
// fingerprint popularity — never have to materialise or sort a full map.
type bucket struct {
	queries      int
	users        map[string]int
	fingerprints map[uint64]int
	tables       map[string]*tableAgg // key: lower-cased table name
	// preds counts concrete predicates once per occurrence in a record —
	// unlike the per-table aggregates, which count once per referenced
	// table — so log-wide "top predicates" listings are not inflated for
	// multi-table queries.
	preds map[string]int

	// Incrementally maintained top-K summaries over the maps above, updated
	// O(log capacity) per touched key as mutations apply.
	topTables       *topkSummary[string]
	topUsers        *topkSummary[string]
	topPreds        *topkSummary[string]
	topFingerprints *topkSummary[uint64]
}

func newBucket(capacity int) *bucket {
	return &bucket{
		users:           make(map[string]int),
		fingerprints:    make(map[uint64]int),
		tables:          make(map[string]*tableAgg),
		preds:           make(map[string]int),
		topTables:       newTopK[string](capacity),
		topUsers:        newTopK[string](capacity),
		topPreds:        newTopK[string](capacity),
		topFingerprints: newTopK[uint64](capacity),
	}
}

// reseed rebuilds every summary from the bucket's exact maps, giving each the
// tightest membership and miss bound possible for the current counts. Called
// after bulk construction (Rebuild, checkpoint Restore), where the
// incremental admission order could otherwise leave an inflated watermark.
func (b *bucket) reseed(capacity int) {
	tables := make(map[string]int, len(b.tables))
	for key, ta := range b.tables {
		tables[key] = ta.count
	}
	b.topTables = seedTopK(capacity, tables)
	b.topUsers = seedTopK(capacity, b.users)
	b.topPreds = seedTopK(capacity, b.preds)
	b.topFingerprints = seedTopK(capacity, b.fingerprints)
}

// empty reports whether the bucket holds no counted state at all — no
// queries and no retired summary entries — so owner buckets of churning
// users can be pruned without leaking heap or watermark state.
func (b *bucket) empty() bool {
	return b.queries == 0 &&
		b.topTables.len() == 0 && b.topUsers.len() == 0 &&
		b.topPreds.len() == 0 && b.topFingerprints.len() == 0
}

// bumpItem adjusts one candidate counter, deleting the key when it empties
// so removed queries do not leak zero-count entries.
func bumpItem(m map[string]*itemCount, key, rel string, delta int) {
	ic := m[key]
	if ic == nil {
		if delta <= 0 {
			return
		}
		ic = &itemCount{rel: rel}
		m[key] = ic
	}
	ic.count += delta
	if ic.count <= 0 {
		delete(m, key)
	}
}

func bumpJoin(m map[string]*joinCount, key, left, right string, delta int) {
	jc := m[key]
	if jc == nil {
		if delta <= 0 {
			return
		}
		jc = &joinCount{left: left, right: right}
		m[key] = jc
	}
	jc.count += delta
	if jc.count <= 0 {
		delete(m, key)
	}
}

// bumpCount adjusts a plain counter map, deleting emptied keys.
func bumpCount[K comparable](m map[K]int, key K, delta int) {
	if n := m[key] + delta; n > 0 {
		m[key] = n
	} else {
		delete(m, key)
	}
}

// relItem is a pre-rendered candidate key with its lower-cased qualifying
// relation, built once per record so the per-table loop in apply does no
// string work of its own.
type relItem struct {
	text string
	rel  string
}

// joinItem is a pre-rendered canonical join key with its two side relations.
type joinItem struct {
	key         string
	left, right string
}

// apply adds (delta=+1) or retracts (delta=-1) one record's contributions.
// A record contributes once per distinct table it references — mirroring the
// recommender's former per-table index scans, where a query referencing two
// context tables was visited (and counted) once per table. All name/text
// rendering happens once per record, before the table loop: apply runs under
// the store's commit lock, so it must not redo string builds per table.
func (b *bucket) apply(rec *storage.QueryRecord, delta int) {
	b.queries += delta
	bumpCount(b.users, rec.User, delta)
	b.topUsers.update(rec.User, b.users[rec.User])
	bumpCount(b.fingerprints, rec.Fingerprint, delta)
	b.topFingerprints.update(rec.Fingerprint, b.fingerprints[rec.Fingerprint])
	attrs := make([]relItem, 0, len(rec.Attributes))
	for _, a := range rec.Attributes {
		name := a.Attr
		if a.Rel != "" {
			name = a.Rel + "." + a.Attr
		}
		attrs = append(attrs, relItem{text: name, rel: strings.ToLower(a.Rel)})
	}
	var preds []relItem
	var joins []joinItem
	for _, p := range rec.Predicates {
		if p.IsJoin {
			joins = append(joins, joinItem{
				key:  CanonicalJoin(p),
				left: strings.ToLower(p.Rel), right: strings.ToLower(p.RightRel),
			})
			continue
		}
		text := PredicateText(p)
		bumpCount(b.preds, text, delta)
		b.topPreds.update(text, b.preds[text])
		preds = append(preds, relItem{text: text, rel: strings.ToLower(p.Rel)})
	}
	seen := make(map[string]bool, len(rec.Tables))
	for _, t := range rec.Tables {
		key := strings.ToLower(t)
		if seen[key] {
			continue
		}
		seen[key] = true
		ta := b.tables[key]
		if ta == nil {
			if delta <= 0 {
				continue
			}
			ta = newTableAgg()
			b.tables[key] = ta
		}
		ta.count += delta
		bumpCount(ta.names, t, delta)
		for _, a := range attrs {
			bumpItem(ta.attrs, a.text, a.rel, delta)
		}
		for _, p := range preds {
			bumpItem(ta.preds, p.text, p.rel, delta)
		}
		for _, j := range joins {
			bumpJoin(ta.joins, j.key, j.left, j.right, delta)
		}
		if ta.count <= 0 {
			delete(b.tables, key)
		}
		b.topTables.update(key, ta.count)
	}
}

// CanonicalJoin renders a join predicate with the two sides of an equi-join
// ordered deterministically, so "A.x = B.x" and "B.x = A.x" aggregate under
// one key. It is exactly the suggestion text the recommender emits.
func CanonicalJoin(pr storage.PredicateRow) string {
	left := pr.Rel + "." + pr.Attr
	right := pr.RightRel + "." + pr.RightAttr
	if pr.Op == "=" && left > right {
		left, right = right, left
	}
	return left + " " + pr.Op + " " + right
}

// PredicateText renders a concrete (non-join) predicate exactly as the
// recommender suggests and de-duplicates it. Counter keys, the recommender's
// scan fallback, and correction candidates all share this one format — keep
// them byte-identical through this helper.
func PredicateText(pr storage.PredicateRow) string {
	col := pr.Attr
	if pr.Rel != "" {
		col = pr.Rel + "." + pr.Attr
	}
	return col + " " + pr.Op + " " + pr.Const
}

// Tracker holds the incrementally maintained aggregates. It is safe for
// concurrent use: mutations arrive serialised under the store's commit lock,
// reads come from request-serving goroutines.
type Tracker struct {
	mu       sync.RWMutex
	capacity int // per-bucket per-dimension top-K summary capacity
	all      *bucket
	public   *bucket
	owners   map[string]*bucket // non-public records per owning user

	// readLatency, when EnableMetrics installed it, holds one histogram per
	// listing read ("tables", "users", "predicates", "fingerprints") timing
	// the full merge — lock hold plus out-of-lock sort. Written once under
	// mu, read under the read lock by the hot paths.
	readLatency map[string]*telemetry.Histogram
}

// New returns an empty tracker with the default summary capacity. Use Attach
// to keep it synchronised with a store, or Rebuild to fill it from one once.
func New() *Tracker {
	return NewWithCapacity(defaultTopKCapacity)
}

// NewWithCapacity returns an empty tracker whose per-bucket top-K summaries
// track up to capacity keys per dimension (≤ 0 selects the default). Smaller
// capacities trade listing completeness (a larger reported miss bound) for
// memory; reads stay exact for every key a summary tracks either way.
func NewWithCapacity(capacity int) *Tracker {
	if capacity <= 0 {
		capacity = defaultTopKCapacity
	}
	return &Tracker{
		capacity: capacity,
		all:      newBucket(capacity),
		public:   newBucket(capacity),
		owners:   make(map[string]*bucket),
	}
}

// Capacity returns the per-bucket per-dimension top-K summary capacity.
func (t *Tracker) Capacity() int { return t.capacity }

// Attach builds a tracker over the store's current contents and subscribes
// it to the mutation event bus. Registration and the initial rebuild happen
// under the store's commit lock, so no mutation can slip between them; WAL
// replay keeps the tracker correct incrementally and a RestoreState triggers
// a full rebuild through the Reset hook. The tracker also offers the
// Checkpoint/Restore pair, so WAL snapshots carry its counters and recovery
// skips the rebuild when a checkpoint sidecar is present.
func Attach(store *storage.Store) *Tracker {
	return AttachWithCapacity(store, 0)
}

// AttachWithCapacity is Attach with a custom per-bucket top-K summary
// capacity (≤ 0 selects the default). Small capacities force evictions and
// non-zero miss bounds early; production embedders normally want the default.
func AttachWithCapacity(store *storage.Store, capacity int) *Tracker {
	t := NewWithCapacity(capacity)
	rebuild := func() { t.Rebuild(store) }
	store.Subscribe("stats", t.OnMutation, storage.SubscribeOptions{
		Init: rebuild, Reset: rebuild,
		Checkpoint: t.Checkpoint, Restore: t.Restore,
	})
	return t
}

// Rebuild replaces the tracker's counters with a from-scratch aggregation
// over the store's current contents. The new counters are built off to the
// side and swapped in, so concurrent readers never observe a half-built
// state.
func (t *Tracker) Rebuild(store *storage.Store) {
	all, public := newBucket(t.capacity), newBucket(t.capacity)
	owners := make(map[string]*bucket)
	store.Snapshot().Scan(storage.Principal{Admin: true}, func(rec *storage.QueryRecord) bool {
		all.apply(rec, 1)
		if rec.Visibility == storage.VisibilityPublic {
			public.apply(rec, 1)
		} else {
			b := owners[rec.User]
			if b == nil {
				b = newBucket(t.capacity)
				owners[rec.User] = b
			}
			b.apply(rec, 1)
		}
		return true
	})
	// Reseed the summaries from the final maps: the insertion-order build
	// above can leave an inflated miss watermark, while a from-scratch seed
	// yields the exact top-capacity membership and tightest bound.
	all.reseed(t.capacity)
	public.reseed(t.capacity)
	for _, b := range owners {
		b.reseed(t.capacity)
	}
	t.mu.Lock()
	t.all, t.public, t.owners = all, public, owners
	t.mu.Unlock()
}

// OnMutation adjusts the counters for one committed mutation. It is the
// tracker's bus subscription and runs under the store's commit lock; ops
// that do not change counted state (annotations, session assignment,
// maintenance flags, runtime stats) are no-ops.
func (t *Tracker) OnMutation(m *storage.Mutation) {
	switch m.Op {
	case storage.OpPut:
		t.mu.Lock()
		// Replay of a Put over an existing ID (snapshot/segment overlap)
		// replaces the older record; retract it first.
		if prev := m.Prev(); prev != nil {
			t.removeLocked(prev)
		}
		if next := m.Next(); next != nil {
			t.addLocked(next)
		}
		t.mu.Unlock()
	case storage.OpDelete:
		if prev := m.Prev(); prev != nil {
			t.mu.Lock()
			t.removeLocked(prev)
			t.mu.Unlock()
		}
	case storage.OpSetVisibility:
		prev, next := m.Prev(), m.Next()
		if prev == nil || next == nil {
			return
		}
		prevPub := prev.Visibility == storage.VisibilityPublic
		nextPub := next.Visibility == storage.VisibilityPublic
		if prevPub == nextPub {
			return // same bucket; counted contents unchanged
		}
		t.mu.Lock()
		t.specificFor(prev).apply(prev, -1)
		t.pruneOwner(prev.User)
		t.specificFor(next).apply(next, 1)
		t.mu.Unlock()
	case storage.OpReplaceText:
		prev, next := m.Prev(), m.Next()
		if prev == nil || next == nil {
			return
		}
		t.mu.Lock()
		t.removeLocked(prev)
		t.addLocked(next)
		t.mu.Unlock()
	}
}

func (t *Tracker) addLocked(rec *storage.QueryRecord) {
	t.all.apply(rec, 1)
	t.specificFor(rec).apply(rec, 1)
}

func (t *Tracker) removeLocked(rec *storage.QueryRecord) {
	t.all.apply(rec, -1)
	t.specificFor(rec).apply(rec, -1)
	t.pruneOwner(rec.User)
}

// specificFor returns (creating if needed) the visibility bucket a record's
// contributions belong to besides `all`.
func (t *Tracker) specificFor(rec *storage.QueryRecord) *bucket {
	if rec.Visibility == storage.VisibilityPublic {
		return t.public
	}
	b := t.owners[rec.User]
	if b == nil {
		b = newBucket(t.capacity)
		t.owners[rec.User] = b
	}
	return b
}

// pruneOwner drops a user's bucket once it holds nothing — no queries and no
// summary entries — so churning users (deletes, visibility flips to public)
// do not leak empty buckets or retired top-K heap/watermark state.
func (t *Tracker) pruneOwner(user string) {
	if b := t.owners[user]; b != nil && b.empty() {
		delete(t.owners, user)
	}
}

// bucketsFor returns the buckets visible to the principal: admins read the
// whole log, everyone else the public bucket merged with their own
// non-public queries. Callers must hold the read lock.
func (t *Tracker) bucketsFor(p storage.Principal) []*bucket {
	if p.Admin {
		return []*bucket{t.all}
	}
	bs := []*bucket{t.public}
	if b := t.owners[p.User]; b != nil {
		bs = append(bs, b)
	}
	return bs
}

// ---------------------------------------------------------------------------
// Read API
// ---------------------------------------------------------------------------

// QueryCount returns how many logged queries the principal's counters cover.
func (t *Tracker) QueryCount(p storage.Principal) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, b := range t.bucketsFor(p) {
		n += b.queries
	}
	return n
}

// observeRead times one listing read; reads capture their histogram under
// the read lock they already hold and observe after the out-of-lock merge.
func (t *Tracker) histogramLocked(read string) *telemetry.Histogram {
	if t.readLatency == nil {
		return nil
	}
	return t.readLatency[read]
}

// TableCounts returns per-table reference counts visible to the principal,
// sorted by descending count then name — the same shape as
// storage.TableCounts. The listing is served from the maintained top-K
// summaries: only keys a visible bucket tracks are merged (counts probed
// exactly from the counter maps), so the read costs O(capacity log capacity)
// regardless of how many tables the log references, and the lock is released
// before any sorting happens. Tables omitted by every visible summary have
// true count ≤ ApproxBounds(p).Tables.
func (t *Tracker) TableCounts(p storage.Principal) []storage.TableCount {
	start := time.Now()
	type agg struct {
		key   string
		count int
		names map[string]int
	}
	t.mu.RLock()
	h := t.histogramLocked("tables")
	buckets := t.bucketsFor(p)
	merged := make(map[string]*agg)
	for bi, b := range buckets {
		for _, e := range b.topTables.heap {
			if merged[e.key] != nil {
				continue
			}
			// The entry's count is already the exact count in its own
			// bucket; only the other buckets need probing.
			a := &agg{key: e.key, count: e.count, names: make(map[string]int, 1)}
			for bj, b2 := range buckets {
				if ta := b2.tables[e.key]; ta != nil {
					if bj != bi {
						a.count += ta.count
					}
					for name, n := range ta.names {
						a.names[name] += n
					}
				}
			}
			merged[e.key] = a
		}
	}
	out := make([]storage.TableCount, 0, len(merged))
	tails := make([]map[string]int, 0, len(merged))
	for _, a := range merged {
		out = append(out, storage.TableCount{Table: a.key, Count: a.count})
		tails = append(tails, a.names)
	}
	t.mu.RUnlock()
	// Display-name resolution and sorting run outside the lock; the name
	// maps were copied above, so they cannot be mutated under us.
	for i := range out {
		out[i].Table = storage.PickDisplayName(tails[i], out[i].Table)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Table < out[j].Table
	})
	if h != nil {
		h.Observe(time.Since(start))
	}
	return out
}

// UserCount pairs a user with how many of their queries the principal's
// counters cover.
type UserCount struct {
	User    string
	Queries int
}

// UserActivity returns per-user query counts visible to the principal,
// sorted by descending count then user. Served from the maintained top-K
// summaries: the read merges at most capacity tracked users per visible
// bucket — flat in the user population — and sorts outside the lock. Users
// omitted by every visible summary have true count ≤ ApproxBounds(p).Users.
func (t *Tracker) UserActivity(p storage.Principal) []UserCount {
	start := time.Now()
	t.mu.RLock()
	h := t.histogramLocked("users")
	buckets := t.bucketsFor(p)
	out := make([]UserCount, 0, t.capacity)
	seen := make(map[string]bool, t.capacity)
	for bi, b := range buckets {
		for _, e := range b.topUsers.heap {
			if seen[e.key] {
				continue
			}
			seen[e.key] = true
			// The entry mirrors its own bucket's exact count; only the other
			// buckets need probing, so a single-bucket (admin) read never
			// touches the full counter maps.
			n := e.count
			for bj, b2 := range buckets {
				if bj != bi {
					n += b2.users[e.key]
				}
			}
			out = append(out, UserCount{User: e.key, Queries: n})
		}
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Queries != out[j].Queries {
			return out[i].Queries > out[j].Queries
		}
		return out[i].User < out[j].User
	})
	if h != nil {
		h.Observe(time.Since(start))
	}
	return out
}

// ItemCount is one (item, count) pair of a bounded listing read.
type ItemCount struct {
	Item  string
	Count int
}

// FingerprintCount is one (template fingerprint, count) pair.
type FingerprintCount struct {
	Fingerprint uint64
	Count       int
}

// TopPredicates returns the k most used concrete (non-join) predicates
// visible to the principal, counted once per occurrence (the same totals as
// GlobalPredicateCounts), sorted by descending count then text. k ≤ 0 means
// every tracked predicate. Predicates omitted by every visible summary have
// true count ≤ ApproxBounds(p).Predicates.
func (t *Tracker) TopPredicates(p storage.Principal, k int) []ItemCount {
	start := time.Now()
	t.mu.RLock()
	h := t.histogramLocked("predicates")
	buckets := t.bucketsFor(p)
	out := make([]ItemCount, 0, t.capacity)
	seen := make(map[string]bool, t.capacity)
	for bi, b := range buckets {
		for _, e := range b.topPreds.heap {
			if seen[e.key] {
				continue
			}
			seen[e.key] = true
			n := e.count
			for bj, b2 := range buckets {
				if bj != bi {
					n += b2.preds[e.key]
				}
			}
			out = append(out, ItemCount{Item: e.key, Count: n})
		}
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	if h != nil {
		h.Observe(time.Since(start))
	}
	return out
}

// TopFingerprints returns the k most popular query-template fingerprints
// visible to the principal, sorted by descending count then fingerprint.
// k ≤ 0 means every tracked fingerprint. Fingerprints omitted by every
// visible summary have true count ≤ ApproxBounds(p).Fingerprints.
func (t *Tracker) TopFingerprints(p storage.Principal, k int) []FingerprintCount {
	start := time.Now()
	t.mu.RLock()
	h := t.histogramLocked("fingerprints")
	buckets := t.bucketsFor(p)
	out := make([]FingerprintCount, 0, t.capacity)
	seen := make(map[uint64]bool, t.capacity)
	for bi, b := range buckets {
		for _, e := range b.topFingerprints.heap {
			if seen[e.key] {
				continue
			}
			seen[e.key] = true
			n := e.count
			for bj, b2 := range buckets {
				if bj != bi {
					n += b2.fingerprints[e.key]
				}
			}
			out = append(out, FingerprintCount{Fingerprint: e.key, Count: n})
		}
	}
	t.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	if h != nil {
		h.Observe(time.Since(start))
	}
	return out
}

// MaxFingerprintCount returns the highest per-fingerprint popularity count
// visible to the principal — the popularity normaliser of the similar-query
// ranking — served from the summaries in O(capacity). It can undershoot the
// true maximum only if every copy of the most popular template is untracked,
// i.e. by at most ApproxBounds(p).Fingerprints.
func (t *Tracker) MaxFingerprintCount(p storage.Principal) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	buckets := t.bucketsFor(p)
	max := 0
	for bi, b := range buckets {
		for _, e := range b.topFingerprints.heap {
			n := e.count
			for bj, b2 := range buckets {
				if bj != bi {
					n += b2.fingerprints[e.key]
				}
			}
			if n > max {
				max = n
			}
		}
	}
	return max
}

// FingerprintCountsFor returns the principal-visible popularity counts of
// exactly the requested fingerprints, probed from the exact counter maps in
// O(len(fps)) — the sub-linear replacement for copying the whole
// FingerprintCounts map when the caller (the similar-query ranker) already
// knows which templates it is scoring.
func (t *Tracker) FingerprintCountsFor(p storage.Principal, fps []uint64) map[uint64]int {
	out := make(map[uint64]int, len(fps))
	t.mu.RLock()
	defer t.mu.RUnlock()
	buckets := t.bucketsFor(p)
	for _, fp := range fps {
		if _, done := out[fp]; done {
			continue
		}
		n := 0
		for _, b := range buckets {
			n += b.fingerprints[fp]
		}
		if n > 0 {
			out[fp] = n
		}
	}
	return out
}

// ApproxBounds reports, per listing dimension, the count threshold under
// which the principal's bounded reads may omit an item: any table / user /
// predicate / fingerprint absent from the corresponding listing has true
// count ≤ the reported bound. A zero bound means the listing is complete and
// exact. Bounds are summed across the principal's visible buckets (an item
// untracked in both buckets can hide at most bound_a + bound_b occurrences).
type ApproxBounds struct {
	Tables       int
	Users        int
	Predicates   int
	Fingerprints int
	// Capacity is the per-bucket per-dimension summary size in effect.
	Capacity int
}

// Bounds returns the principal's current approximation bounds (see
// ApproxBounds).
func (t *Tracker) Bounds(p storage.Principal) ApproxBounds {
	t.mu.RLock()
	defer t.mu.RUnlock()
	b := ApproxBounds{Capacity: t.capacity}
	for _, bk := range t.bucketsFor(p) {
		b.Tables += bk.topTables.missedBound
		b.Users += bk.topUsers.missedBound
		b.Predicates += bk.topPreds.missedBound
		b.Fingerprints += bk.topFingerprints.missedBound
	}
	return b
}

// LowerSet builds the lower-cased context-table filter set shared by the
// counter reads here and the recommender's scan fallback, so table-key
// normalization cannot diverge between the two paths.
func LowerSet(tables []string) map[string]bool {
	set := make(map[string]bool, len(tables))
	for _, t := range tables {
		set[strings.ToLower(t)] = true
	}
	return set
}

// ColumnCounts returns attribute usage counts over the queries referencing
// any of the context tables, visible to the principal. It mirrors the
// recommender's former per-table scans exactly: a query referencing two
// context tables contributes twice, and attributes qualified with a relation
// outside the context are skipped.
func (t *Tracker) ColumnCounts(p storage.Principal, tables []string) map[string]int {
	ctx := LowerSet(tables)
	out := make(map[string]int)
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, b := range t.bucketsFor(p) {
		for _, tbl := range tables {
			ta := b.tables[strings.ToLower(tbl)]
			if ta == nil {
				continue
			}
			for name, ic := range ta.attrs {
				if ic.rel != "" && !ctx[ic.rel] {
					continue
				}
				out[name] += ic.count
			}
		}
	}
	return out
}

// PredicateCounts returns concrete (non-join) predicate usage counts over
// the queries referencing any of the context tables, visible to the
// principal, keyed by the ready-to-insert predicate text.
func (t *Tracker) PredicateCounts(p storage.Principal, tables []string) map[string]int {
	ctx := LowerSet(tables)
	out := make(map[string]int)
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, b := range t.bucketsFor(p) {
		for _, tbl := range tables {
			ta := b.tables[strings.ToLower(tbl)]
			if ta == nil {
				continue
			}
			for text, ic := range ta.preds {
				if ic.rel != "" && !ctx[ic.rel] {
					continue
				}
				out[text] += ic.count
			}
		}
	}
	return out
}

// JoinCounts returns join-predicate usage counts over the queries
// referencing any of the context tables, visible to the principal, keyed by
// the canonical join text. Joins whose two sides are not both context tables
// are skipped.
func (t *Tracker) JoinCounts(p storage.Principal, tables []string) map[string]int {
	ctx := LowerSet(tables)
	out := make(map[string]int)
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, b := range t.bucketsFor(p) {
		for _, tbl := range tables {
			ta := b.tables[strings.ToLower(tbl)]
			if ta == nil {
				continue
			}
			for text, jc := range ta.joins {
				if !ctx[jc.left] || !ctx[jc.right] {
					continue
				}
				out[text] += jc.count
			}
		}
	}
	return out
}

// GlobalPredicateCounts returns log-wide concrete-predicate usage counts
// visible to the principal, counting each predicate once per occurrence in a
// record (no per-table multiplicity). The copy is O(distinct predicates):
// serving paths use TopPredicates instead; this full materialisation remains
// for equivalence tests and embedders that need the exact tail.
func (t *Tracker) GlobalPredicateCounts(p storage.Principal) map[string]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]int)
	for _, b := range t.bucketsFor(p) {
		for text, n := range b.preds {
			out[text] += n
		}
	}
	return out
}

// FingerprintCounts returns per-template-fingerprint popularity counts
// visible to the principal. The map is a merged copy the caller owns — an
// O(distinct templates) materialisation. Serving paths use
// FingerprintCountsFor / TopFingerprints instead; this remains for
// equivalence tests and embedders that need the exact tail.
func (t *Tracker) FingerprintCounts(p storage.Principal) map[uint64]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[uint64]int)
	for _, b := range t.bucketsFor(p) {
		for fp, n := range b.fingerprints {
			out[fp] += n
		}
	}
	return out
}

// EnableMetrics registers scrape-time gauges over the tracker's aggregate
// sizes. A nil registry is a no-op.
func (t *Tracker) EnableMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("cqms_stats_tracked_tables",
		"Distinct tables the incremental stats tracker counts.",
		func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			return float64(len(t.all.tables))
		})
	reg.GaugeFunc("cqms_stats_tracked_users",
		"Distinct users the incremental stats tracker counts.",
		func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			return float64(len(t.all.users))
		})
	reg.GaugeFunc("cqms_stats_owner_buckets",
		"Per-owner visibility buckets the tracker currently holds.",
		func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			return float64(len(t.owners))
		})
	// Top-K summary health on the admin (`all`) bucket: how many keys each
	// dimension tracks and the miss watermark — the count under which a
	// listing may omit items (0 = listings are complete and exact).
	tracked := reg.GaugeFuncVec("cqms_stats_topk_tracked",
		"Keys tracked by the all-bucket top-K summary, per dimension.", "dimension")
	bound := reg.GaugeFuncVec("cqms_stats_topk_miss_bound",
		"Count threshold under which the all-bucket listing may omit items, per dimension (0 = exact).",
		"dimension")
	summaries := map[string]func(b *bucket) (tracked, bound int){
		"tables":       func(b *bucket) (int, int) { return b.topTables.len(), b.topTables.missedBound },
		"users":        func(b *bucket) (int, int) { return b.topUsers.len(), b.topUsers.missedBound },
		"predicates":   func(b *bucket) (int, int) { return b.topPreds.len(), b.topPreds.missedBound },
		"fingerprints": func(b *bucket) (int, int) { return b.topFingerprints.len(), b.topFingerprints.missedBound },
	}
	for dim, read := range summaries {
		read := read
		tracked.With(func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			n, _ := read(t.all)
			return float64(n)
		}, dim)
		bound.With(func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			_, b := read(t.all)
			return float64(b)
		}, dim)
	}
	readVec := reg.HistogramVec("cqms_stats_read_seconds",
		"Bounded stats listing read latency (summary merge + out-of-lock sort), per read.",
		telemetry.DefBuckets, "read")
	t.mu.Lock()
	t.readLatency = map[string]*telemetry.Histogram{
		"tables":       readVec.With("tables"),
		"users":        readVec.With("users"),
		"predicates":   readVec.With("predicates"),
		"fingerprints": readVec.With("fingerprints"),
	}
	t.mu.Unlock()
}
