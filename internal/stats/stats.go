// Package stats maintains incrementally updated, visibility-aware aggregates
// over the query log: per-(table, attribute) selection counts, per-(table,
// concrete-predicate) and join-predicate counts, fingerprint popularity and
// per-user/table activity. A Tracker subscribes to the storage mutation
// event bus, so every counter is adjusted in commit order as mutations are
// applied — the recommendation hot path reads O(candidates) counters instead
// of re-scanning the log per keystroke, which is the incremental-propagation
// argument of Youtopia's cooperative update-exchange model applied to the
// CQMS's derived state.
//
// Visibility model: counters are kept in buckets. The `all` bucket holds
// every record and serves admin principals; the `public` bucket holds
// VisibilityPublic records; one bucket per user holds that user's non-public
// records. A non-admin principal reads the public bucket merged with their
// own bucket. Group-visible queries of *other* users are therefore not
// counted for a group member — the tracker trades that sliver of visibility
// for O(1) bucket merges; endpoints that return actual records still enforce
// visibility exactly.
package stats

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/storage"
	"repro/internal/telemetry"
)

// itemCount is one counted completion candidate (an attribute or a
// predicate), remembering the lower-cased qualifying relation so reads can
// apply the recommender's context filter without reparsing the key.
type itemCount struct {
	count int
	rel   string // lower-cased qualifying relation, "" when unqualified
}

// joinCount is one counted join predicate with the lower-cased relation keys
// of its two sides.
type joinCount struct {
	count       int
	left, right string
}

// tableAgg aggregates everything about the queries referencing one table.
type tableAgg struct {
	count int            // queries referencing the table
	names map[string]int // live display casings
	attrs map[string]*itemCount
	preds map[string]*itemCount
	joins map[string]*joinCount
}

func newTableAgg() *tableAgg {
	return &tableAgg{
		names: make(map[string]int),
		attrs: make(map[string]*itemCount),
		preds: make(map[string]*itemCount),
		joins: make(map[string]*joinCount),
	}
}

// bucket is one visibility bucket of counters.
type bucket struct {
	queries      int
	users        map[string]int
	fingerprints map[uint64]int
	tables       map[string]*tableAgg // key: lower-cased table name
	// preds counts concrete predicates once per occurrence in a record —
	// unlike the per-table aggregates, which count once per referenced
	// table — so log-wide "top predicates" listings are not inflated for
	// multi-table queries.
	preds map[string]int
}

func newBucket() *bucket {
	return &bucket{
		users:        make(map[string]int),
		fingerprints: make(map[uint64]int),
		tables:       make(map[string]*tableAgg),
		preds:        make(map[string]int),
	}
}

// bumpItem adjusts one candidate counter, deleting the key when it empties
// so removed queries do not leak zero-count entries.
func bumpItem(m map[string]*itemCount, key, rel string, delta int) {
	ic := m[key]
	if ic == nil {
		if delta <= 0 {
			return
		}
		ic = &itemCount{rel: rel}
		m[key] = ic
	}
	ic.count += delta
	if ic.count <= 0 {
		delete(m, key)
	}
}

func bumpJoin(m map[string]*joinCount, key, left, right string, delta int) {
	jc := m[key]
	if jc == nil {
		if delta <= 0 {
			return
		}
		jc = &joinCount{left: left, right: right}
		m[key] = jc
	}
	jc.count += delta
	if jc.count <= 0 {
		delete(m, key)
	}
}

// bumpCount adjusts a plain counter map, deleting emptied keys.
func bumpCount[K comparable](m map[K]int, key K, delta int) {
	if n := m[key] + delta; n > 0 {
		m[key] = n
	} else {
		delete(m, key)
	}
}

// relItem is a pre-rendered candidate key with its lower-cased qualifying
// relation, built once per record so the per-table loop in apply does no
// string work of its own.
type relItem struct {
	text string
	rel  string
}

// joinItem is a pre-rendered canonical join key with its two side relations.
type joinItem struct {
	key         string
	left, right string
}

// apply adds (delta=+1) or retracts (delta=-1) one record's contributions.
// A record contributes once per distinct table it references — mirroring the
// recommender's former per-table index scans, where a query referencing two
// context tables was visited (and counted) once per table. All name/text
// rendering happens once per record, before the table loop: apply runs under
// the store's commit lock, so it must not redo string builds per table.
func (b *bucket) apply(rec *storage.QueryRecord, delta int) {
	b.queries += delta
	bumpCount(b.users, rec.User, delta)
	bumpCount(b.fingerprints, rec.Fingerprint, delta)
	attrs := make([]relItem, 0, len(rec.Attributes))
	for _, a := range rec.Attributes {
		name := a.Attr
		if a.Rel != "" {
			name = a.Rel + "." + a.Attr
		}
		attrs = append(attrs, relItem{text: name, rel: strings.ToLower(a.Rel)})
	}
	var preds []relItem
	var joins []joinItem
	for _, p := range rec.Predicates {
		if p.IsJoin {
			joins = append(joins, joinItem{
				key:  CanonicalJoin(p),
				left: strings.ToLower(p.Rel), right: strings.ToLower(p.RightRel),
			})
			continue
		}
		text := PredicateText(p)
		bumpCount(b.preds, text, delta)
		preds = append(preds, relItem{text: text, rel: strings.ToLower(p.Rel)})
	}
	seen := make(map[string]bool, len(rec.Tables))
	for _, t := range rec.Tables {
		key := strings.ToLower(t)
		if seen[key] {
			continue
		}
		seen[key] = true
		ta := b.tables[key]
		if ta == nil {
			if delta <= 0 {
				continue
			}
			ta = newTableAgg()
			b.tables[key] = ta
		}
		ta.count += delta
		bumpCount(ta.names, t, delta)
		for _, a := range attrs {
			bumpItem(ta.attrs, a.text, a.rel, delta)
		}
		for _, p := range preds {
			bumpItem(ta.preds, p.text, p.rel, delta)
		}
		for _, j := range joins {
			bumpJoin(ta.joins, j.key, j.left, j.right, delta)
		}
		if ta.count <= 0 {
			delete(b.tables, key)
		}
	}
}

// CanonicalJoin renders a join predicate with the two sides of an equi-join
// ordered deterministically, so "A.x = B.x" and "B.x = A.x" aggregate under
// one key. It is exactly the suggestion text the recommender emits.
func CanonicalJoin(pr storage.PredicateRow) string {
	left := pr.Rel + "." + pr.Attr
	right := pr.RightRel + "." + pr.RightAttr
	if pr.Op == "=" && left > right {
		left, right = right, left
	}
	return left + " " + pr.Op + " " + right
}

// PredicateText renders a concrete (non-join) predicate exactly as the
// recommender suggests and de-duplicates it. Counter keys, the recommender's
// scan fallback, and correction candidates all share this one format — keep
// them byte-identical through this helper.
func PredicateText(pr storage.PredicateRow) string {
	col := pr.Attr
	if pr.Rel != "" {
		col = pr.Rel + "." + pr.Attr
	}
	return col + " " + pr.Op + " " + pr.Const
}

// Tracker holds the incrementally maintained aggregates. It is safe for
// concurrent use: mutations arrive serialised under the store's commit lock,
// reads come from request-serving goroutines.
type Tracker struct {
	mu     sync.RWMutex
	all    *bucket
	public *bucket
	owners map[string]*bucket // non-public records per owning user
}

// New returns an empty tracker. Use Attach to keep it synchronised with a
// store, or Rebuild to fill it from one once.
func New() *Tracker {
	return &Tracker{all: newBucket(), public: newBucket(), owners: make(map[string]*bucket)}
}

// Attach builds a tracker over the store's current contents and subscribes
// it to the mutation event bus. Registration and the initial rebuild happen
// under the store's commit lock, so no mutation can slip between them; WAL
// replay keeps the tracker correct incrementally and a RestoreState triggers
// a full rebuild through the Reset hook. The tracker also offers the
// Checkpoint/Restore pair, so WAL snapshots carry its counters and recovery
// skips the rebuild when a checkpoint sidecar is present.
func Attach(store *storage.Store) *Tracker {
	t := New()
	rebuild := func() { t.Rebuild(store) }
	store.Subscribe("stats", t.OnMutation, storage.SubscribeOptions{
		Init: rebuild, Reset: rebuild,
		Checkpoint: t.Checkpoint, Restore: t.Restore,
	})
	return t
}

// Rebuild replaces the tracker's counters with a from-scratch aggregation
// over the store's current contents. The new counters are built off to the
// side and swapped in, so concurrent readers never observe a half-built
// state.
func (t *Tracker) Rebuild(store *storage.Store) {
	all, public := newBucket(), newBucket()
	owners := make(map[string]*bucket)
	store.Snapshot().Scan(storage.Principal{Admin: true}, func(rec *storage.QueryRecord) bool {
		all.apply(rec, 1)
		if rec.Visibility == storage.VisibilityPublic {
			public.apply(rec, 1)
		} else {
			b := owners[rec.User]
			if b == nil {
				b = newBucket()
				owners[rec.User] = b
			}
			b.apply(rec, 1)
		}
		return true
	})
	t.mu.Lock()
	t.all, t.public, t.owners = all, public, owners
	t.mu.Unlock()
}

// OnMutation adjusts the counters for one committed mutation. It is the
// tracker's bus subscription and runs under the store's commit lock; ops
// that do not change counted state (annotations, session assignment,
// maintenance flags, runtime stats) are no-ops.
func (t *Tracker) OnMutation(m *storage.Mutation) {
	switch m.Op {
	case storage.OpPut:
		t.mu.Lock()
		// Replay of a Put over an existing ID (snapshot/segment overlap)
		// replaces the older record; retract it first.
		if prev := m.Prev(); prev != nil {
			t.removeLocked(prev)
		}
		if next := m.Next(); next != nil {
			t.addLocked(next)
		}
		t.mu.Unlock()
	case storage.OpDelete:
		if prev := m.Prev(); prev != nil {
			t.mu.Lock()
			t.removeLocked(prev)
			t.mu.Unlock()
		}
	case storage.OpSetVisibility:
		prev, next := m.Prev(), m.Next()
		if prev == nil || next == nil {
			return
		}
		prevPub := prev.Visibility == storage.VisibilityPublic
		nextPub := next.Visibility == storage.VisibilityPublic
		if prevPub == nextPub {
			return // same bucket; counted contents unchanged
		}
		t.mu.Lock()
		t.specificFor(prev).apply(prev, -1)
		t.pruneOwner(prev.User)
		t.specificFor(next).apply(next, 1)
		t.mu.Unlock()
	case storage.OpReplaceText:
		prev, next := m.Prev(), m.Next()
		if prev == nil || next == nil {
			return
		}
		t.mu.Lock()
		t.removeLocked(prev)
		t.addLocked(next)
		t.mu.Unlock()
	}
}

func (t *Tracker) addLocked(rec *storage.QueryRecord) {
	t.all.apply(rec, 1)
	t.specificFor(rec).apply(rec, 1)
}

func (t *Tracker) removeLocked(rec *storage.QueryRecord) {
	t.all.apply(rec, -1)
	t.specificFor(rec).apply(rec, -1)
	t.pruneOwner(rec.User)
}

// specificFor returns (creating if needed) the visibility bucket a record's
// contributions belong to besides `all`.
func (t *Tracker) specificFor(rec *storage.QueryRecord) *bucket {
	if rec.Visibility == storage.VisibilityPublic {
		return t.public
	}
	b := t.owners[rec.User]
	if b == nil {
		b = newBucket()
		t.owners[rec.User] = b
	}
	return b
}

// pruneOwner drops a user's bucket once it holds nothing, so churning users
// do not leak empty buckets.
func (t *Tracker) pruneOwner(user string) {
	if b := t.owners[user]; b != nil && b.queries == 0 {
		delete(t.owners, user)
	}
}

// bucketsFor returns the buckets visible to the principal: admins read the
// whole log, everyone else the public bucket merged with their own
// non-public queries. Callers must hold the read lock.
func (t *Tracker) bucketsFor(p storage.Principal) []*bucket {
	if p.Admin {
		return []*bucket{t.all}
	}
	bs := []*bucket{t.public}
	if b := t.owners[p.User]; b != nil {
		bs = append(bs, b)
	}
	return bs
}

// ---------------------------------------------------------------------------
// Read API
// ---------------------------------------------------------------------------

// QueryCount returns how many logged queries the principal's counters cover.
func (t *Tracker) QueryCount(p storage.Principal) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	n := 0
	for _, b := range t.bucketsFor(p) {
		n += b.queries
	}
	return n
}

// TableCounts returns per-table reference counts visible to the principal,
// sorted by descending count then name — the same shape as
// storage.TableCounts.
func (t *Tracker) TableCounts(p storage.Principal) []storage.TableCount {
	t.mu.RLock()
	type agg struct {
		count int
		names map[string]int
	}
	merged := make(map[string]*agg)
	for _, b := range t.bucketsFor(p) {
		for key, ta := range b.tables {
			a := merged[key]
			if a == nil {
				a = &agg{names: make(map[string]int, len(ta.names))}
				merged[key] = a
			}
			a.count += ta.count
			for name, n := range ta.names {
				a.names[name] += n
			}
		}
	}
	t.mu.RUnlock()
	out := make([]storage.TableCount, 0, len(merged))
	for key, a := range merged {
		out = append(out, storage.TableCount{Table: storage.PickDisplayName(a.names, key), Count: a.count})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Table < out[j].Table
	})
	return out
}

// UserCount pairs a user with how many of their queries the principal's
// counters cover.
type UserCount struct {
	User    string
	Queries int
}

// UserActivity returns per-user query counts visible to the principal,
// sorted by descending count then user.
func (t *Tracker) UserActivity(p storage.Principal) []UserCount {
	t.mu.RLock()
	merged := make(map[string]int)
	for _, b := range t.bucketsFor(p) {
		for user, n := range b.users {
			merged[user] += n
		}
	}
	t.mu.RUnlock()
	out := make([]UserCount, 0, len(merged))
	for user, n := range merged {
		out = append(out, UserCount{User: user, Queries: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Queries != out[j].Queries {
			return out[i].Queries > out[j].Queries
		}
		return out[i].User < out[j].User
	})
	return out
}

// LowerSet builds the lower-cased context-table filter set shared by the
// counter reads here and the recommender's scan fallback, so table-key
// normalization cannot diverge between the two paths.
func LowerSet(tables []string) map[string]bool {
	set := make(map[string]bool, len(tables))
	for _, t := range tables {
		set[strings.ToLower(t)] = true
	}
	return set
}

// ColumnCounts returns attribute usage counts over the queries referencing
// any of the context tables, visible to the principal. It mirrors the
// recommender's former per-table scans exactly: a query referencing two
// context tables contributes twice, and attributes qualified with a relation
// outside the context are skipped.
func (t *Tracker) ColumnCounts(p storage.Principal, tables []string) map[string]int {
	ctx := LowerSet(tables)
	out := make(map[string]int)
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, b := range t.bucketsFor(p) {
		for _, tbl := range tables {
			ta := b.tables[strings.ToLower(tbl)]
			if ta == nil {
				continue
			}
			for name, ic := range ta.attrs {
				if ic.rel != "" && !ctx[ic.rel] {
					continue
				}
				out[name] += ic.count
			}
		}
	}
	return out
}

// PredicateCounts returns concrete (non-join) predicate usage counts over
// the queries referencing any of the context tables, visible to the
// principal, keyed by the ready-to-insert predicate text.
func (t *Tracker) PredicateCounts(p storage.Principal, tables []string) map[string]int {
	ctx := LowerSet(tables)
	out := make(map[string]int)
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, b := range t.bucketsFor(p) {
		for _, tbl := range tables {
			ta := b.tables[strings.ToLower(tbl)]
			if ta == nil {
				continue
			}
			for text, ic := range ta.preds {
				if ic.rel != "" && !ctx[ic.rel] {
					continue
				}
				out[text] += ic.count
			}
		}
	}
	return out
}

// JoinCounts returns join-predicate usage counts over the queries
// referencing any of the context tables, visible to the principal, keyed by
// the canonical join text. Joins whose two sides are not both context tables
// are skipped.
func (t *Tracker) JoinCounts(p storage.Principal, tables []string) map[string]int {
	ctx := LowerSet(tables)
	out := make(map[string]int)
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, b := range t.bucketsFor(p) {
		for _, tbl := range tables {
			ta := b.tables[strings.ToLower(tbl)]
			if ta == nil {
				continue
			}
			for text, jc := range ta.joins {
				if !ctx[jc.left] || !ctx[jc.right] {
					continue
				}
				out[text] += jc.count
			}
		}
	}
	return out
}

// GlobalPredicateCounts returns log-wide concrete-predicate usage counts
// visible to the principal, counting each predicate once per occurrence in a
// record (no per-table multiplicity). It backs the stats API's "top
// predicates" listing.
func (t *Tracker) GlobalPredicateCounts(p storage.Principal) map[string]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[string]int)
	for _, b := range t.bucketsFor(p) {
		for text, n := range b.preds {
			out[text] += n
		}
	}
	return out
}

// FingerprintCounts returns per-template-fingerprint popularity counts
// visible to the principal (the popularity term of the composite similar-
// query ranking). The map is a merged copy the caller owns.
func (t *Tracker) FingerprintCounts(p storage.Principal) map[uint64]int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make(map[uint64]int)
	for _, b := range t.bucketsFor(p) {
		for fp, n := range b.fingerprints {
			out[fp] += n
		}
	}
	return out
}

// EnableMetrics registers scrape-time gauges over the tracker's aggregate
// sizes. A nil registry is a no-op.
func (t *Tracker) EnableMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	reg.GaugeFunc("cqms_stats_tracked_tables",
		"Distinct tables the incremental stats tracker counts.",
		func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			return float64(len(t.all.tables))
		})
	reg.GaugeFunc("cqms_stats_tracked_users",
		"Distinct users the incremental stats tracker counts.",
		func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			return float64(len(t.all.users))
		})
	reg.GaugeFunc("cqms_stats_owner_buckets",
		"Per-owner visibility buckets the tracker currently holds.",
		func() float64 {
			t.mu.RLock()
			defer t.mu.RUnlock()
			return float64(len(t.owners))
		})
}
