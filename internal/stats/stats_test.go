package stats_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/wal"
)

var (
	admin = storage.Principal{Admin: true}
	users = []string{"alice", "bob", "carol"}
)

// genSQL produces a parseable query over a small vocabulary, mixing
// single-table selections, concrete predicates and equi-joins so every
// counter family (attributes, predicates, joins, fingerprints) is exercised.
func genSQL(rng *rand.Rand) string {
	switch rng.Intn(4) {
	case 0:
		return fmt.Sprintf("SELECT temp FROM WaterTemp WHERE temp < %d", rng.Intn(30))
	case 1:
		return fmt.Sprintf("SELECT WaterSalinity.salinity FROM WaterSalinity WHERE WaterSalinity.salinity > %d", rng.Intn(10))
	case 2:
		return fmt.Sprintf(
			"SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x AND WaterTemp.temp < %d",
			rng.Intn(25))
	default:
		return fmt.Sprintf("SELECT city FROM CityLocations WHERE pop > %d", rng.Intn(5)*10000)
	}
}

func genRecord(t testing.TB, rng *rand.Rand) *storage.QueryRecord {
	t.Helper()
	rec, err := storage.NewRecordFromSQL(genSQL(rng))
	if err != nil {
		t.Fatalf("NewRecordFromSQL: %v", err)
	}
	rec.User = users[rng.Intn(len(users))]
	rec.Group = "limnology"
	rec.Visibility = storage.Visibility(rng.Intn(3))
	return rec
}

// liveIDs collects the IDs currently in the store.
func liveIDs(s *storage.Store) []storage.QueryID {
	var ids []storage.QueryID
	s.Snapshot().Scan(admin, func(rec *storage.QueryRecord) bool {
		ids = append(ids, rec.ID)
		return true
	})
	return ids
}

// mutateRandomly drives n random mutations — every op the tracker must stay
// correct under, plus the ops it must ignore — against the store.
func mutateRandomly(t testing.TB, rng *rand.Rand, s *storage.Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ids := liveIDs(s)
		pick := func() storage.QueryID { return ids[rng.Intn(len(ids))] }
		op := rng.Intn(10)
		if len(ids) == 0 {
			op = 0
		}
		switch op {
		case 0, 1, 2: // keep the store growing
			s.Put(genRecord(t, rng))
		case 3:
			batch := make([]*storage.QueryRecord, rng.Intn(3)+1)
			for j := range batch {
				batch[j] = genRecord(t, rng)
			}
			s.PutBatch(batch)
		case 4:
			if err := s.Delete(pick(), admin); err != nil {
				t.Fatalf("Delete: %v", err)
			}
		case 5:
			if err := s.SetVisibility(pick(), admin, storage.Visibility(rng.Intn(3))); err != nil {
				t.Fatalf("SetVisibility: %v", err)
			}
		case 6:
			id := pick()
			upd, err := storage.NewRecordFromSQL(genSQL(rng))
			if err != nil {
				t.Fatalf("NewRecordFromSQL: %v", err)
			}
			if err := s.ReplaceText(id, upd); err != nil {
				t.Fatalf("ReplaceText: %v", err)
			}
		case 7:
			if err := s.Annotate(pick(), admin, storage.Annotation{Author: "admin", Text: "note"}); err != nil {
				t.Fatalf("Annotate: %v", err)
			}
		case 8:
			if err := s.AssignSession(pick(), int64(rng.Intn(5)+1)); err != nil {
				t.Fatalf("AssignSession: %v", err)
			}
		default:
			if err := s.MarkStatsStale(pick(), rng.Intn(2) == 0); err != nil {
				t.Fatalf("MarkStatsStale: %v", err)
			}
		}
	}
}

// observation is everything the tracker's read API reports for one
// principal, used to compare an incrementally maintained tracker against a
// from-scratch rebuild.
type observation struct {
	Queries      int
	Tables       []storage.TableCount
	Activity     []stats.UserCount
	Fingerprints map[uint64]int
	Columns      map[string]int
	Predicates   map[string]int
	GlobalPreds  map[string]int
	Joins        map[string]int
}

func observe(t *stats.Tracker, p storage.Principal, tables []string) observation {
	return observation{
		Queries:      t.QueryCount(p),
		Tables:       t.TableCounts(p),
		Activity:     t.UserActivity(p),
		Fingerprints: t.FingerprintCounts(p),
		Columns:      t.ColumnCounts(p, tables),
		Predicates:   t.PredicateCounts(p, tables),
		GlobalPreds:  t.GlobalPredicateCounts(p),
		Joins:        t.JoinCounts(p, tables),
	}
}

// assertMatchesRebuild asserts the live tracker's counters are identical to
// a from-scratch full-scan rebuild over the same store, across admin, every
// user and a stranger, over every table context.
func assertMatchesRebuild(t *testing.T, live *stats.Tracker, store *storage.Store) {
	t.Helper()
	rebuilt := stats.New()
	rebuilt.Rebuild(store)
	var allTables []string
	for _, tc := range rebuilt.TableCounts(admin) {
		allTables = append(allTables, tc.Table)
	}
	principals := []storage.Principal{admin, {User: "eve"}}
	for _, u := range users {
		principals = append(principals, storage.Principal{User: u, Groups: []string{"limnology"}})
	}
	for _, p := range principals {
		got := observe(live, p, allTables)
		want := observe(rebuilt, p, allTables)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("principal %+v: incremental counters diverge from rebuild\n got: %+v\nwant: %+v", p, got, want)
		}
		// Single-table contexts exercise the per-table filters.
		for _, tbl := range allTables {
			gotOne := observe(live, p, []string{tbl})
			wantOne := observe(rebuilt, p, []string{tbl})
			if !reflect.DeepEqual(gotOne, wantOne) {
				t.Errorf("principal %+v table %s: diverged\n got: %+v\nwant: %+v", p, tbl, gotOne, wantOne)
			}
		}
	}
}

// TestRandomizedMutationEquivalence is the core correctness property of the
// stats subsystem: after an arbitrary mutation history (Put, PutBatch,
// Delete, SetVisibility, ReplaceText, Annotate, AssignSession, staleness
// flags), the incrementally maintained counters equal a from-scratch
// full-scan rebuild.
func TestRandomizedMutationEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			store := storage.NewStore()
			tracker := stats.Attach(store)
			mutateRandomly(t, rng, store, 400)
			assertMatchesRebuild(t, tracker, store)
		})
	}
}

// TestEquivalenceAfterWALRecovery proves the counters survive a crash:
// a tracker attached to a fresh store before WAL recovery is rebuilt
// incrementally by the replay stream (and the snapshot Reset hook) and ends
// identical to a full-scan rebuild — and to the pre-crash counters.
func TestEquivalenceAfterWALRecovery(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(42))

	store1 := storage.NewStore()
	tracker1 := stats.Attach(store1)
	cfg := wal.DefaultConfig(dir)
	cfg.SyncPolicy = "off"
	mgr1, _, err := wal.Open(store1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mutateRandomly(t, rng, store1, 200)
	// A mid-history snapshot plus more mutations exercises both recovery
	// paths at once: RestoreState (Reset rebuild) then tail replay.
	if _, _, err := mgr1.Snapshot(); err != nil {
		t.Fatal(err)
	}
	mutateRandomly(t, rng, store1, 100)
	if err := mgr1.Close(); err != nil {
		t.Fatal(err)
	}
	preCrash := observe(tracker1, admin, []string{"WaterTemp", "WaterSalinity", "CityLocations"})

	store2 := storage.NewStore()
	tracker2 := stats.Attach(store2)
	mgr2, info, err := wal.Open(store2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if info.Queries != store1.Count() {
		t.Fatalf("recovered %d queries, want %d", info.Queries, store1.Count())
	}
	assertMatchesRebuild(t, tracker2, store2)
	postCrash := observe(tracker2, admin, []string{"WaterTemp", "WaterSalinity", "CityLocations"})
	if !reflect.DeepEqual(preCrash, postCrash) {
		t.Errorf("counters changed across recovery\n pre: %+v\npost: %+v", preCrash, postCrash)
	}
}

// TestEquivalenceAfterRestoreState proves the Reset hook rebuilds the
// tracker when the store contents are wholesale-replaced.
func TestEquivalenceAfterRestoreState(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	store1 := storage.NewStore()
	stats.Attach(store1)
	mutateRandomly(t, rng, store1, 150)
	st := store1.State()

	store2 := storage.NewStore()
	tracker2 := stats.Attach(store2)
	// Pre-existing contents must be fully replaced, in the tracker too.
	mutateRandomly(t, rng, store2, 30)
	store2.RestoreState(st)
	assertMatchesRebuild(t, tracker2, store2)
	if got, want := tracker2.QueryCount(admin), store2.Count(); got != want {
		t.Errorf("QueryCount = %d, want %d", got, want)
	}
}

// TestConcurrentReadsDuringMutations drives mutations and counter reads in
// parallel; run under -race it proves the tracker's locking. Equivalence is
// re-checked once writers quiesce.
func TestConcurrentReadsDuringMutations(t *testing.T) {
	store := storage.NewStore()
	tracker := stats.Attach(store)
	rng := rand.New(rand.NewSource(99))
	// Seed so readers have something to merge.
	mutateRandomly(t, rng, store, 50)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			p := storage.Principal{User: users[r%len(users)]}
			for {
				select {
				case <-stop:
					return
				default:
				}
				tracker.QueryCount(p)
				tracker.TableCounts(p)
				tracker.ColumnCounts(p, []string{"WaterTemp", "WaterSalinity"})
				tracker.PredicateCounts(p, []string{"WaterTemp"})
				tracker.JoinCounts(p, []string{"WaterTemp", "WaterSalinity"})
				tracker.FingerprintCounts(p)
				tracker.UserActivity(p)
			}
		}(r)
	}
	var writers sync.WaitGroup
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(seed int64) {
			defer writers.Done()
			wrng := rand.New(rand.NewSource(seed))
			for i := 0; i < 100; i++ {
				store.Put(genRecord(t, wrng))
			}
		}(int64(w + 1))
	}
	writers.Wait()
	close(stop)
	wg.Wait()
	assertMatchesRebuild(t, tracker, store)
}
