// Bounded heavy-hitter summaries for the stats tracker's hot reads.
//
// Every bucket keeps, next to its exact counter maps, one topkSummary per
// listed dimension (tables, users, global predicates, fingerprints). The
// summary is a Space-Saving-style structure (Metwally et al., "Efficient
// Computation of Frequent and Top-k Elements in Data Streams") adapted to
// this tracker's situation: the exact per-key counts already exist in the
// bucket's maps, so the summary never needs to *estimate* a count — it only
// has to decide *membership*, i.e. which ≤ capacity keys are worth keeping
// sorted-read-ready. That makes its guarantee strictly stronger than classic
// Space-Saving:
//
//   - every count the summary reports is exact (mirrored from the maps), and
//   - every key it does NOT track has true count ≤ missedBound, a watermark
//     maintained exactly: whenever a key is evicted or refused admission, the
//     watermark rises to that key's count at that moment. Increments re-offer
//     the key, so a key can only stay untracked while it stays under the
//     current minimum; decrements only lower untracked counts further.
//
// Reads therefore cost O(capacity log capacity) — independent of how many
// users/predicates/templates the log has accumulated — and come with a
// per-read error bound: "any omitted item's true count is ≤ bound". The
// tracker's /v1/stats surface reports that bound so callers can tell a
// complete listing (bound 0, nothing was ever evicted) from a truncated one.
//
// Updates are O(log capacity) sift operations on a positional min-heap and
// run under the store's commit lock, matching the bus-callback budget.
package stats

import "sort"

// defaultTopKCapacity is how many keys each summary tracks per bucket per
// dimension. It must comfortably exceed the API's listing caps (the server
// returns 20) so merged listings stay exact until a dimension's cardinality
// truly explodes, yet stay small enough that a read's merge-and-sort cost is
// trivially flat. 256 tracked keys × 4 dimensions ≈ a few KB per bucket.
const defaultTopKCapacity = 256

// topkEntry is one tracked (key, exact count) pair.
type topkEntry[K comparable] struct {
	key   K
	count int
}

// topkSummary tracks the (approximately) top-capacity keys of one dimension
// by exact count. The zero value is not usable; use newTopK.
type topkSummary[K comparable] struct {
	capacity int
	heap     []topkEntry[K] // positional min-heap by count
	pos      map[K]int      // key -> heap index
	// missedBound is the exact high-water mark of counts at which keys were
	// evicted from or refused admission to the summary: every untracked
	// key's true count is ≤ missedBound. It only rises during incremental
	// maintenance and resets when the summary is reseeded from the full map
	// (rebuild, checkpoint restore), where it becomes the count of the
	// largest key that did not fit.
	missedBound int
}

func newTopK[K comparable](capacity int) *topkSummary[K] {
	if capacity <= 0 {
		capacity = defaultTopKCapacity
	}
	// The index map grows on demand rather than being pre-sized to capacity:
	// most summaries live in per-owner buckets tracking a handful of keys,
	// and a million sparsely used buckets must not each pay for 256 slots.
	return &topkSummary[K]{capacity: capacity, pos: make(map[K]int)}
}

// update re-synchronises one key with its new exact count after a mutation.
// count ≤ 0 removes the key; an untracked key is admitted if there is room or
// it beats the current minimum (Space-Saving's eviction rule), otherwise the
// miss watermark absorbs it.
func (t *topkSummary[K]) update(key K, count int) {
	i, tracked := t.pos[key]
	if count <= 0 {
		if tracked {
			t.removeAt(i)
		}
		return
	}
	if tracked {
		old := t.heap[i].count
		t.heap[i].count = count
		// Min-heap: a shrunken count may now undercut its parent (sift up),
		// a grown one may exceed its children (sift down).
		if count < old {
			t.siftUp(i)
		} else {
			t.siftDown(i)
		}
		return
	}
	if len(t.heap) < t.capacity {
		t.heap = append(t.heap, topkEntry[K]{key: key, count: count})
		t.pos[key] = len(t.heap) - 1
		t.siftUp(len(t.heap) - 1)
		return
	}
	if count > t.heap[0].count {
		// Evict the minimum: its count becomes part of the miss watermark.
		if t.heap[0].count > t.missedBound {
			t.missedBound = t.heap[0].count
		}
		delete(t.pos, t.heap[0].key)
		t.heap[0] = topkEntry[K]{key: key, count: count}
		t.pos[key] = 0
		t.siftDown(0)
		return
	}
	// Refused admission: the key stays untracked with count ≤ the current
	// minimum; remember the largest count ever refused.
	if count > t.missedBound {
		t.missedBound = count
	}
}

// removeAt deletes the entry at heap index i.
func (t *topkSummary[K]) removeAt(i int) {
	delete(t.pos, t.heap[i].key)
	last := len(t.heap) - 1
	if i != last {
		t.heap[i] = t.heap[last]
		t.pos[t.heap[i].key] = i
	}
	t.heap = t.heap[:last]
	if i < len(t.heap) {
		t.siftDown(i)
		t.siftUp(i)
	}
}

func (t *topkSummary[K]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if t.heap[parent].count <= t.heap[i].count {
			return
		}
		t.swap(parent, i)
		i = parent
	}
}

func (t *topkSummary[K]) siftDown(i int) {
	n := len(t.heap)
	for {
		smallest := i
		if l := 2*i + 1; l < n && t.heap[l].count < t.heap[smallest].count {
			smallest = l
		}
		if r := 2*i + 2; r < n && t.heap[r].count < t.heap[smallest].count {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.swap(i, smallest)
		i = smallest
	}
}

func (t *topkSummary[K]) swap(i, j int) {
	t.heap[i], t.heap[j] = t.heap[j], t.heap[i]
	t.pos[t.heap[i].key] = i
	t.pos[t.heap[j].key] = j
}

// contains reports whether the summary currently tracks key.
func (t *topkSummary[K]) contains(key K) bool {
	_, ok := t.pos[key]
	return ok
}

// len returns how many keys the summary currently tracks.
func (t *topkSummary[K]) len() int { return len(t.heap) }

// seed rebuilds the summary from a full exact counter map: the top-capacity
// keys are tracked and the watermark becomes the largest count that did not
// fit — the tightest bound any summary over that map can offer. Used by
// Rebuild and checkpoint Restore so recovered summaries start exact.
func seedTopK[K comparable](capacity int, counts map[K]int) *topkSummary[K] {
	t := newTopK[K](capacity)
	if len(counts) <= t.capacity {
		for k, n := range counts {
			t.update(k, n)
		}
		return t
	}
	// More keys than capacity: take the top-capacity by count so the seeded
	// membership is exactly the true top set (ties broken arbitrarily).
	entries := make([]topkEntry[K], 0, len(counts))
	for k, n := range counts {
		entries = append(entries, topkEntry[K]{key: k, count: n})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].count > entries[j].count })
	for _, e := range entries[:t.capacity] {
		t.update(e.key, e.count)
	}
	t.missedBound = entries[t.capacity].count
	return t
}
