package stats

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
)

// checkInvariants asserts the structural invariants of a summary against the
// exact counts it was fed: the positional index mirrors the heap, the
// min-heap property holds, every tracked count is exact, and every untracked
// key's true count is within the miss watermark.
func checkInvariants(t *testing.T, s *topkSummary[string], exact map[string]int) {
	t.Helper()
	if len(s.heap) != len(s.pos) {
		t.Fatalf("heap has %d entries but pos has %d", len(s.heap), len(s.pos))
	}
	if len(s.heap) > s.capacity {
		t.Fatalf("heap has %d entries, capacity %d", len(s.heap), s.capacity)
	}
	for i, e := range s.heap {
		if s.pos[e.key] != i {
			t.Fatalf("pos[%q] = %d, want %d", e.key, s.pos[e.key], i)
		}
		if parent := (i - 1) / 2; i > 0 && s.heap[parent].count > e.count {
			t.Fatalf("heap property violated at %d: parent %d > child %d",
				i, s.heap[parent].count, e.count)
		}
		if exact[e.key] != e.count {
			t.Fatalf("tracked %q has count %d, exact is %d", e.key, e.count, exact[e.key])
		}
	}
	for key, n := range exact {
		if n > 0 && !s.contains(key) && n > s.missedBound {
			t.Fatalf("untracked %q has count %d > missedBound %d", key, n, s.missedBound)
		}
	}
}

func TestTopKAdmissionAndEviction(t *testing.T) {
	s := newTopK[string](2)
	s.update("a", 5)
	s.update("b", 3)
	if s.len() != 2 || !s.contains("a") || !s.contains("b") {
		t.Fatalf("expected a and b tracked, got len %d", s.len())
	}
	if s.missedBound != 0 {
		t.Fatalf("missedBound = %d before any eviction, want 0", s.missedBound)
	}
	// c beats the minimum (b=3): b is evicted and its count becomes the bound.
	s.update("c", 4)
	if s.contains("b") || !s.contains("c") {
		t.Fatal("expected b evicted by c")
	}
	if s.missedBound != 3 {
		t.Fatalf("missedBound = %d after evicting count 3, want 3", s.missedBound)
	}
	// d does not beat the minimum (c=4): refused, bound absorbs its count.
	s.update("d", 4)
	if s.contains("d") {
		t.Fatal("d should have been refused admission")
	}
	if s.missedBound != 4 {
		t.Fatalf("missedBound = %d after refusing count 4, want 4", s.missedBound)
	}
}

func TestTopKRemoveOnZero(t *testing.T) {
	s := newTopK[string](4)
	s.update("a", 2)
	s.update("b", 7)
	s.update("a", 0)
	if s.contains("a") || s.len() != 1 {
		t.Fatalf("a should be removed at count 0; len = %d", s.len())
	}
	// Removing an untracked key is a no-op.
	s.update("ghost", 0)
	if s.len() != 1 {
		t.Fatalf("len = %d after no-op removal, want 1", s.len())
	}
}

func TestTopKSeedOverflow(t *testing.T) {
	counts := map[string]int{"a": 10, "b": 8, "c": 6, "d": 4, "e": 2}
	s := seedTopK(3, counts)
	for _, key := range []string{"a", "b", "c"} {
		if !s.contains(key) {
			t.Errorf("seeded summary should track %q", key)
		}
	}
	// The tightest possible bound over this map is the largest count that
	// did not fit: d's 4.
	if s.missedBound != 4 {
		t.Errorf("missedBound = %d, want 4", s.missedBound)
	}
	checkInvariants(t, s, counts)

	// Under capacity: everything tracked, bound zero.
	small := seedTopK(8, counts)
	if small.len() != len(counts) || small.missedBound != 0 {
		t.Errorf("under-capacity seed: len %d bound %d, want %d and 0",
			small.len(), small.missedBound, len(counts))
	}
}

// TestTopKRandomized drives random increments, decrements and removals
// against an exact mirror map and checks the structural invariants and the
// miss-bound contract after every step.
func TestTopKRandomized(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := newTopK[string](8)
			exact := make(map[string]int)
			keys := make([]string, 24)
			for i := range keys {
				keys[i] = fmt.Sprintf("k%02d", i)
			}
			for step := 0; step < 2000; step++ {
				key := keys[rng.Intn(len(keys))]
				switch rng.Intn(5) {
				case 0: // retract one occurrence
					if exact[key] > 0 {
						exact[key]--
						if exact[key] == 0 {
							delete(exact, key)
						}
					}
				case 1: // drop the key outright (delete of its last record)
					delete(exact, key)
				default:
					exact[key]++
				}
				s.update(key, exact[key])
			}
			checkInvariants(t, s, exact)
		})
	}
}

// TestPruneOwnerAfterVisibilityFlip is the regression test for owner-bucket
// leaks: a user whose only record flips to public (or is deleted) must not
// leave behind an owner bucket holding retired heap entries or watermark
// state.
func TestPruneOwnerAfterVisibilityFlip(t *testing.T) {
	admin := storage.Principal{Admin: true}
	store := storage.NewStore()
	tr := Attach(store)

	rec, err := storage.NewRecordFromSQL("SELECT temp FROM WaterTemp WHERE temp < 5")
	if err != nil {
		t.Fatal(err)
	}
	rec.User = "dave"
	rec.Visibility = storage.VisibilityPrivate
	store.Put(rec)

	ownerBuckets := func() int {
		tr.mu.RLock()
		defer tr.mu.RUnlock()
		return len(tr.owners)
	}
	if ownerBuckets() != 1 {
		t.Fatalf("owner buckets = %d after private put, want 1", ownerBuckets())
	}
	if err := store.SetVisibility(rec.ID, admin, storage.VisibilityPublic); err != nil {
		t.Fatal(err)
	}
	if ownerBuckets() != 0 {
		t.Fatalf("owner buckets = %d after flip to public, want 0 (bucket leaked)", ownerBuckets())
	}
	// Flip back: the bucket is recreated with the record's contributions.
	if err := store.SetVisibility(rec.ID, admin, storage.VisibilityGroup); err != nil {
		t.Fatal(err)
	}
	if ownerBuckets() != 1 {
		t.Fatalf("owner buckets = %d after flip back, want 1", ownerBuckets())
	}
	if got := tr.QueryCount(storage.Principal{User: "dave"}); got != 1 {
		t.Fatalf("dave sees %d queries, want 1", got)
	}
	// Deleting the last record prunes the bucket too.
	if err := store.Delete(rec.ID, admin); err != nil {
		t.Fatal(err)
	}
	if ownerBuckets() != 0 {
		t.Fatalf("owner buckets = %d after delete, want 0", ownerBuckets())
	}
}
