package storage

import (
	"testing"
)

func busRecord(t *testing.T, text, user string) *QueryRecord {
	t.Helper()
	rec, err := NewRecordFromSQL(text)
	if err != nil {
		t.Fatalf("NewRecordFromSQL(%q): %v", text, err)
	}
	rec.User = user
	return rec
}

// TestBusFanOutOrder verifies the event bus contract: the WAL slot is
// notified first, then every subscriber in subscription order, for each
// mutation in commit order.
func TestBusFanOutOrder(t *testing.T) {
	s := NewStore()
	var order []string
	s.SetMutationHook(func(m *Mutation) { order = append(order, "wal:"+string(m.Op)) })
	s.Subscribe("a", func(m *Mutation) { order = append(order, "a:"+string(m.Op)) }, SubscribeOptions{})
	s.Subscribe("b", func(m *Mutation) { order = append(order, "b:"+string(m.Op)) }, SubscribeOptions{})

	id := s.Put(busRecord(t, "SELECT temp FROM WaterTemp", "alice"))
	if err := s.MarkInvalid(id, "schema change"); err != nil {
		t.Fatal(err)
	}
	want := []string{"wal:put", "a:put", "b:put", "wal:mark-invalid", "a:mark-invalid", "b:mark-invalid"}
	if len(order) != len(want) {
		t.Fatalf("fan-out = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fan-out[%d] = %q, want %q (full: %v)", i, order[i], want[i], order)
		}
	}
}

// TestBusPrevNext verifies that bus subscribers see the record versions
// before and after each mutation.
func TestBusPrevNext(t *testing.T) {
	s := NewStore()
	type seen struct {
		op         MutationOp
		prev, next *QueryRecord
	}
	var log []seen
	s.Subscribe("watch", func(m *Mutation) {
		log = append(log, seen{op: m.Op, prev: m.Prev(), next: m.Next()})
	}, SubscribeOptions{})

	rec := busRecord(t, "SELECT temp FROM WaterTemp", "alice")
	id := s.Put(rec)
	alice := Principal{User: "alice"}
	if err := s.SetVisibility(id, alice, VisibilityPublic); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id, alice); err != nil {
		t.Fatal(err)
	}

	if len(log) != 3 {
		t.Fatalf("saw %d mutations, want 3", len(log))
	}
	if log[0].op != OpPut || log[0].prev != nil || log[0].next == nil || log[0].next.ID != id {
		t.Errorf("put: %+v", log[0])
	}
	if log[1].op != OpSetVisibility || log[1].prev == nil || log[1].next == nil {
		t.Fatalf("visibility: %+v", log[1])
	}
	if log[1].prev.Visibility != VisibilityPrivate || log[1].next.Visibility != VisibilityPublic {
		t.Errorf("visibility prev/next = %v/%v", log[1].prev.Visibility, log[1].next.Visibility)
	}
	if log[2].op != OpDelete || log[2].prev == nil || log[2].next != nil {
		t.Errorf("delete: %+v", log[2])
	}
}

// TestBusReplayReachesSubscribersNotWAL verifies that Apply (the recovery
// path) fans replayed mutations out to subscribers but never to the WAL
// slot — replay must not re-append the log to itself.
func TestBusReplayReachesSubscribersNotWAL(t *testing.T) {
	s := NewStore()
	walCalls, subCalls := 0, 0
	s.SetMutationHook(func(*Mutation) { walCalls++ })
	s.Subscribe("derived", func(*Mutation) { subCalls++ }, SubscribeOptions{})

	rec := busRecord(t, "SELECT temp FROM WaterTemp", "alice")
	rec.ID = 7
	rec.Valid = true
	if err := s.Apply(&Mutation{Op: OpPut, Record: rec}); err != nil {
		t.Fatal(err)
	}
	if walCalls != 0 {
		t.Errorf("WAL slot saw %d replayed mutations, want 0", walCalls)
	}
	if subCalls != 1 {
		t.Errorf("subscriber saw %d replayed mutations, want 1", subCalls)
	}
}

// TestBusResetOnRestore verifies RestoreState fires Reset instead of
// per-record mutations.
func TestBusResetOnRestore(t *testing.T) {
	s := NewStore()
	s.Put(busRecord(t, "SELECT temp FROM WaterTemp", "alice"))
	st := s.State()

	s2 := NewStore()
	mutations, resets := 0, 0
	s2.Subscribe("derived", func(*Mutation) { mutations++ }, SubscribeOptions{
		Reset: func() { resets++ },
	})
	s2.RestoreState(st)
	if mutations != 0 {
		t.Errorf("restore emitted %d mutations, want 0", mutations)
	}
	if resets != 1 {
		t.Errorf("restore fired %d resets, want 1", resets)
	}
	if s2.Count() != 1 {
		t.Errorf("restored count = %d", s2.Count())
	}
}

// TestBusUnsubscribe verifies a cancelled subscription stops receiving
// mutations while others keep going.
func TestBusUnsubscribe(t *testing.T) {
	s := NewStore()
	aCalls, bCalls := 0, 0
	cancelA := s.Subscribe("a", func(*Mutation) { aCalls++ }, SubscribeOptions{})
	s.Subscribe("b", func(*Mutation) { bCalls++ }, SubscribeOptions{})
	s.Put(busRecord(t, "SELECT temp FROM WaterTemp", "alice"))
	cancelA()
	s.Put(busRecord(t, "SELECT lake FROM WaterTemp", "alice"))
	if aCalls != 1 {
		t.Errorf("cancelled subscriber saw %d mutations, want 1", aCalls)
	}
	if bCalls != 2 {
		t.Errorf("remaining subscriber saw %d mutations, want 2", bCalls)
	}
}

// TestBusSubscribeInit verifies Init runs at registration so a subscriber
// can seed itself without losing a racing mutation.
func TestBusSubscribeInit(t *testing.T) {
	s := NewStore()
	s.Put(busRecord(t, "SELECT temp FROM WaterTemp", "alice"))
	seeded := 0
	s.Subscribe("derived", func(*Mutation) {}, SubscribeOptions{
		Init: func() { seeded = s.Count() },
	})
	if seeded != 1 {
		t.Errorf("Init saw %d queries, want 1", seeded)
	}
}

// TestTableCountsCounterServed verifies TableCounts stays exact — including
// display casing — through inserts, case variants and deletes now that it is
// served from incremental counters instead of a log scan.
func TestTableCountsCounterServed(t *testing.T) {
	s := NewStore()
	alice := Principal{User: "alice"}
	id1 := s.Put(busRecord(t, "SELECT temp FROM WaterTemp", "alice"))
	s.Put(busRecord(t, "SELECT lake FROM watertemp", "alice"))
	s.Put(busRecord(t, "SELECT lake FROM WaterTemp", "alice"))
	s.Put(busRecord(t, "SELECT city FROM CityLocations", "alice"))

	counts := s.TableCounts()
	if len(counts) != 2 || counts[0].Table != "WaterTemp" || counts[0].Count != 3 {
		t.Fatalf("counts = %+v, want WaterTemp:3 first", counts)
	}
	if counts[1].Table != "CityLocations" || counts[1].Count != 1 {
		t.Errorf("counts[1] = %+v", counts[1])
	}

	// Deleting the only CityLocations query removes the entry entirely, and
	// the dominant casing survives deletes of a minority casing.
	if err := s.Delete(QueryID(4), alice); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id1, alice); err != nil {
		t.Fatal(err)
	}
	counts = s.TableCounts()
	if len(counts) != 1 || counts[0].Count != 2 {
		t.Fatalf("counts after delete = %+v", counts)
	}
	if counts[0].Table != "WaterTemp" && counts[0].Table != "watertemp" {
		t.Errorf("table name = %q", counts[0].Table)
	}
}
