package storage

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// checkpointSub is a bus subscriber that counts records and supports the
// Checkpoint/Restore contract, recording which path brought it back.
type checkpointSub struct {
	count    int
	source   string // "live", "checkpoint" or "rebuilt"
	failWith error  // returned by Restore when set
}

func (c *checkpointSub) attach(t *testing.T, s *Store, name string) {
	t.Helper()
	rebuild := func() {
		c.count = s.Count()
		c.source = "rebuilt"
	}
	s.Subscribe(name, func(m *Mutation) {
		switch m.Op {
		case OpPut:
			if m.Prev() == nil {
				c.count++
			}
		case OpDelete:
			c.count--
		}
	}, SubscribeOptions{
		Init:  func() { c.count = s.Count(); c.source = "live" },
		Reset: rebuild,
		Checkpoint: func() (int, []byte, error) {
			return 1, []byte(fmt.Sprintf("%d", c.count)), nil
		},
		Restore: func(version int, data []byte) error {
			if c.failWith != nil {
				return c.failWith
			}
			if version != 1 {
				return fmt.Errorf("unknown version %d", version)
			}
			if _, err := fmt.Sscanf(string(data), "%d", &c.count); err != nil {
				return err
			}
			c.source = "checkpoint"
			return nil
		},
	})
}

// TestStateWithCheckpoints proves checkpoints are captured in the same
// critical section as the state and carried by name.
func TestStateWithCheckpoints(t *testing.T) {
	s := NewStore()
	var a, b checkpointSub
	a.attach(t, s, "alpha")
	b.attach(t, s, "beta")
	for i := 0; i < 3; i++ {
		s.Put(busRecord(t, "SELECT temp FROM WaterTemp", "alice"))
	}
	st, cps := s.StateWithCheckpoints(nil)
	if len(st.Records) != 3 {
		t.Fatalf("state has %d records, want 3", len(st.Records))
	}
	want := []SubscriberCheckpoint{
		{Name: "alpha", Version: 1, Data: []byte("3")},
		{Name: "beta", Version: 1, Data: []byte("3")},
	}
	if !reflect.DeepEqual(cps, want) {
		t.Fatalf("checkpoints = %+v, want %+v", cps, want)
	}
}

// TestRestoreStateWithCheckpoints covers the three restore outcomes: a
// usable checkpoint restores without a rebuild, a failing Restore falls back
// to Reset, and a subscriber with no checkpoint in the snapshot resets too.
func TestRestoreStateWithCheckpoints(t *testing.T) {
	src := NewStore()
	for i := 0; i < 5; i++ {
		src.Put(busRecord(t, "SELECT temp FROM WaterTemp", "alice"))
	}
	st := src.State()

	dst := NewStore()
	var good, bad, missing checkpointSub
	bad.failWith = errors.New("boom")
	good.attach(t, dst, "good")
	bad.attach(t, dst, "bad")
	missing.attach(t, dst, "missing")
	cps := []SubscriberCheckpoint{
		{Name: "good", Version: 1, Data: []byte("5")},
		{Name: "bad", Version: 1, Data: []byte("5")},
		{Name: "stale-name", Version: 1, Data: []byte("99")},
	}
	restored, rebuilt := dst.RestoreStateWithCheckpoints(st, cps)
	if !reflect.DeepEqual(restored, []string{"good"}) {
		t.Errorf("restored = %v, want [good]", restored)
	}
	if !reflect.DeepEqual(rebuilt, []string{"bad", "missing"}) {
		t.Errorf("rebuilt = %v, want [bad missing]", rebuilt)
	}
	for _, tc := range []struct {
		name   string
		sub    *checkpointSub
		source string
	}{{"good", &good, "checkpoint"}, {"bad", &bad, "rebuilt"}, {"missing", &missing, "rebuilt"}} {
		if tc.sub.source != tc.source {
			t.Errorf("%s: source = %q, want %q", tc.name, tc.sub.source, tc.source)
		}
		if tc.sub.count != 5 {
			t.Errorf("%s: count = %d, want 5", tc.name, tc.sub.count)
		}
	}
	// Mutations after the restore keep flowing to every subscriber.
	dst.Put(busRecord(t, "SELECT city FROM CityLocations", "bob"))
	for _, sub := range []*checkpointSub{&good, &bad, &missing} {
		if sub.count != 6 {
			t.Errorf("post-restore count = %d, want 6", sub.count)
		}
	}
}
