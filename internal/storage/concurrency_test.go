package storage

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// stressSQL is a small pool of parseable query texts used by the stress
// writers.
var stressSQL = []string{
	"SELECT * FROM WaterTemp WHERE temp < 18",
	"SELECT salinity FROM WaterSalinity WHERE depth > 5",
	"SELECT city FROM CityLocations WHERE state = 'WA'",
	"SELECT ra, dec FROM Stars WHERE magnitude < 6",
}

func stressRecord(t testing.TB, i int) *QueryRecord {
	t.Helper()
	rec, err := NewRecordFromSQL(stressSQL[i%len(stressSQL)])
	if err != nil {
		t.Fatalf("NewRecordFromSQL: %v", err)
	}
	rec.User = fmt.Sprintf("user%d", i%3)
	rec.Group = "limnology"
	rec.Visibility = Visibility(i % 3)
	return rec
}

// TestConcurrentMutationsWithScans hammers the store with concurrent Put,
// Annotate, Delete, UpdateStats, MarkInvalid/MarkValid and AssignSession
// writers while snapshot scans and indexed scans run, asserting that no
// reader ever observes a half-applied mutation. Run under -race (the CI does)
// to also validate the lock discipline of the copy-on-write indexes.
//
// The invariants rely on writers always changing field pairs together:
//   - UpdateStats always sets ResultRows == ResultColumns,
//   - MarkInvalid always supplies a reason, MarkValid always clears it,
//   - Annotate always sets both Author and Text.
//
// A reader observing a record mid-mutation would see the pairs disagree.
func TestConcurrentMutationsWithScans(t *testing.T) {
	s := NewStore()
	const seed = 64
	ids := make([]QueryID, seed)
	for i := 0; i < seed; i++ {
		ids[i] = s.Put(stressRecord(t, i))
	}
	admin := Principal{Admin: true}
	member := Principal{User: "user1", Groups: []string{"limnology"}}

	const (
		writers        = 4
		readers        = 4
		opsPerWriter   = 300
		scansPerReader = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	report := func(format string, args ...any) {
		select {
		case errs <- fmt.Errorf(format, args...):
		default:
		}
	}

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerWriter; i++ {
				id := ids[rng.Intn(len(ids))]
				switch rng.Intn(7) {
				case 0:
					s.Put(stressRecord(t, rng.Int()))
				case 1:
					// Only the owner or a group member may annotate; admin
					// always can.
					_ = s.Annotate(id, admin, Annotation{Author: "stress", Text: "note"})
				case 2:
					n := rng.Intn(1000)
					if err := s.UpdateStats(id, RuntimeStats{ResultRows: n, ResultColumns: n}); err != nil {
						// The record may have been deleted concurrently.
						continue
					}
				case 3:
					_ = s.MarkInvalid(id, "stress: schema drift")
				case 4:
					_ = s.MarkValid(id)
				case 5:
					_ = s.AssignSession(id, int64(1+rng.Intn(8)))
				case 6:
					// Delete and re-log a fresh query so the store keeps its
					// size; deletes exercise the copy-on-write index removal.
					if rng.Intn(4) == 0 {
						_ = s.Delete(id, admin)
					}
				}
			}
		}(w)
	}

	check := func(rec *QueryRecord) bool {
		if rec.ID == 0 {
			report("scan observed a record without an ID")
			return false
		}
		if rec.Stats.ResultRows != rec.Stats.ResultColumns {
			report("half-applied UpdateStats: rows=%d cols=%d", rec.Stats.ResultRows, rec.Stats.ResultColumns)
			return false
		}
		if !rec.Valid && rec.InvalidReason == "" {
			report("half-applied MarkInvalid: invalid without reason (q%d)", rec.ID)
			return false
		}
		if rec.Valid && rec.InvalidReason != "" {
			report("half-applied MarkValid: valid with reason (q%d)", rec.ID)
			return false
		}
		for _, a := range rec.Annotations {
			if a.Author == "" || a.Text == "" {
				report("half-applied annotation: %+v", a)
				return false
			}
		}
		return true
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < scansPerReader; i++ {
				view := s.Snapshot()
				seen := 0
				view.Scan(admin, func(rec *QueryRecord) bool {
					seen++
					return check(rec)
				})
				if seen == 0 {
					report("snapshot scan saw an empty store")
					return
				}
				view.ScanByTable("WaterTemp", member, func(rec *QueryRecord) bool {
					if !rec.VisibleTo(member) {
						report("indexed scan leaked an invisible record (q%d)", rec.ID)
						return false
					}
					return check(rec)
				})
				view.ScanByUser("user1", member, check)
				view.ScanBySession(int64(1+i%8), admin, check)
			}
		}(r)
	}

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSnapshotMembershipIsStable pins the View contract: queries inserted
// after the snapshot stay invisible to both full and indexed scans, queries
// deleted after the snapshot are skipped, and mutations to surviving records
// are observed atomically.
func TestSnapshotMembershipIsStable(t *testing.T) {
	s := NewStore()
	admin := Principal{Admin: true}
	var ids []QueryID
	for i := 0; i < 4; i++ {
		ids = append(ids, s.Put(stressRecord(t, i*4))) // all reference WaterTemp
	}
	view := s.Snapshot()

	// Insert after the snapshot: invisible to Scan and ScanByTable.
	s.Put(stressRecord(t, 0))
	// Delete one captured query: skipped.
	if err := s.Delete(ids[1], admin); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	// Mutate a surviving query: the scan sees the latest committed version.
	n := 0
	if err := s.UpdateStats(ids[0], RuntimeStats{ResultRows: 7, ResultColumns: 7}); err != nil {
		t.Fatalf("UpdateStats: %v", err)
	}
	view.Scan(admin, func(rec *QueryRecord) bool {
		n++
		if rec.ID == ids[1] {
			t.Errorf("scan visited deleted query %d", rec.ID)
		}
		if rec.ID == ids[0] && rec.Stats.ResultRows != 7 {
			t.Errorf("scan saw stale stats for q%d: %+v", rec.ID, rec.Stats)
		}
		return true
	})
	if n != 3 {
		t.Errorf("scan visited %d queries, want 3 (4 captured - 1 deleted, insert excluded)", n)
	}
	indexed := 0
	view.ScanByTable("WaterTemp", admin, func(rec *QueryRecord) bool {
		indexed++
		return true
	})
	if indexed != 3 {
		t.Errorf("indexed scan visited %d queries, want 3", indexed)
	}
	if got := s.Snapshot().Len(); got != 4 {
		t.Errorf("fresh snapshot Len = %d, want 4", got)
	}
}

// TestIndexBucketsDropWhenEmpty pins the index-leak fix: deleting the last
// query referencing a table/user/fingerprint/session removes the bucket key
// instead of leaving an empty slice behind.
func TestIndexBucketsDropWhenEmpty(t *testing.T) {
	s := NewStore()
	admin := Principal{Admin: true}
	rec, err := NewRecordFromSQL("SELECT ra FROM Stars WHERE magnitude < 6")
	if err != nil {
		t.Fatal(err)
	}
	rec.User = "carol"
	id := s.Put(rec)
	if err := s.AssignSession(id, 42); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(id, admin); err != nil {
		t.Fatal(err)
	}
	s.idx.RLock()
	defer s.idx.RUnlock()
	if _, ok := s.idx.byTable["stars"]; ok {
		t.Error("byTable bucket leaked after delete")
	}
	if _, ok := s.idx.byAttribute["stars.magnitude"]; ok {
		t.Error("byAttribute bucket leaked after delete")
	}
	if _, ok := s.idx.byUser["carol"]; ok {
		t.Error("byUser bucket leaked after delete")
	}
	if _, ok := s.idx.bySession[42]; ok {
		t.Error("bySession bucket leaked after delete")
	}
	if len(s.idx.byFingerprint) != 0 {
		t.Error("byFingerprint bucket leaked after delete")
	}
}

// TestEdgesFromIndex pins the O(degree) edge index: EdgesFrom answers from
// the by-source index and stays consistent across edge-dropping deletes.
func TestEdgesFromIndex(t *testing.T) {
	s := NewStore()
	admin := Principal{Admin: true}
	var ids []QueryID
	for i := 0; i < 3; i++ {
		ids = append(ids, s.Put(stressRecord(t, i)))
	}
	edges := []SessionEdge{
		{From: ids[0], To: ids[1], Type: EdgeModification, Diff: "+pred a < 1"},
		{From: ids[0], To: ids[2], Type: EdgeTemporal, Diff: "none"},
		{From: ids[1], To: ids[2], Type: EdgeInvestigation, Diff: "-col b"},
	}
	for _, e := range edges {
		if err := s.AddEdge(e); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	if got := s.EdgesFrom(ids[0]); len(got) != 2 {
		t.Errorf("EdgesFrom(q%d) = %d edges, want 2", ids[0], len(got))
	}
	if got := s.EdgesFrom(ids[2]); got != nil {
		t.Errorf("EdgesFrom(sink) = %v, want nil", got)
	}
	// A text repair re-indexes the query but keeps its session edges: the
	// repair does not unlink the query from its session history.
	updated, err := NewRecordFromSQL("SELECT * FROM LakeTemperatures WHERE temp < 18")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReplaceText(ids[0], updated); err != nil {
		t.Fatalf("ReplaceText: %v", err)
	}
	if got := s.EdgesFrom(ids[0]); len(got) != 2 {
		t.Errorf("EdgesFrom after ReplaceText = %d edges, want 2", len(got))
	}
	if got := len(s.Edges()); got != 3 {
		t.Errorf("Edges after ReplaceText = %d, want 3", got)
	}
	// Deleting a query drops every edge touching it, in both indexes.
	if err := s.Delete(ids[2], admin); err != nil {
		t.Fatal(err)
	}
	if got := s.EdgesFrom(ids[0]); len(got) != 1 || got[0].To != ids[1] {
		t.Errorf("EdgesFrom after delete = %+v, want single edge to q%d", got, ids[1])
	}
	if got := s.EdgesFrom(ids[1]); len(got) != 0 {
		t.Errorf("EdgesFrom(q%d) after delete = %+v, want none", ids[1], got)
	}
	if got := s.Edges(); len(got) != 1 {
		t.Errorf("Edges after delete = %d, want 1", len(got))
	}
}

// TestLowerCaseCache pins the insert-time lower-casing: stored records carry
// the cache, and ReplaceText recomputes it.
func TestLowerCaseCache(t *testing.T) {
	s := NewStore()
	rec, err := NewRecordFromSQL("SELECT City FROM CityLocations WHERE State = 'WA'")
	if err != nil {
		t.Fatal(err)
	}
	id := s.Put(rec)
	got, _ := s.Snapshot().Get(id, Principal{Admin: true})
	if got.lowerText != "select city from citylocations where state = 'wa'" {
		t.Errorf("lowerText cache = %q", got.lowerText)
	}
	if got.LowerCanonical() == "" || got.LowerCanonical() != got.lowerCanonical {
		t.Errorf("LowerCanonical not cached: %q vs %q", got.LowerCanonical(), got.lowerCanonical)
	}
	updated, err := NewRecordFromSQL("SELECT Lake FROM WaterTemp")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReplaceText(id, updated); err != nil {
		t.Fatal(err)
	}
	got, _ = s.Snapshot().Get(id, Principal{Admin: true})
	if got.lowerText != "select lake from watertemp" {
		t.Errorf("lowerText after ReplaceText = %q", got.lowerText)
	}
	// Probe records never inserted into a store still answer correctly.
	probe := &QueryRecord{Text: "SELECT X"}
	if probe.LowerText() != "select x" {
		t.Errorf("fallback LowerText = %q", probe.LowerText())
	}
}
