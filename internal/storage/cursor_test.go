package storage

import (
	"fmt"
	"sync"
	"testing"
)

func TestScanAfterResumesMidList(t *testing.T) {
	s := NewStore()
	admin := Principal{Admin: true}
	var ids []QueryID
	for i := 0; i < 10; i++ {
		ids = append(ids, putQuery(t, s, "SELECT lake FROM WaterTemp", "alice", "limnology", VisibilityPublic))
	}
	v := s.Snapshot()
	var got []QueryID
	v.ScanAfter(ids[4], admin, func(rec *QueryRecord) bool {
		got = append(got, rec.ID)
		return true
	})
	if len(got) != 5 || got[0] != ids[5] || got[4] != ids[9] {
		t.Fatalf("ScanAfter(%d) = %v, want %v", ids[4], got, ids[5:])
	}
	// A cursor past the end yields nothing.
	v.ScanAfter(ids[9], admin, func(*QueryRecord) bool {
		t.Fatal("scan past the high-water mark visited a record")
		return false
	})
}

func TestSnapshotAtPinsMembership(t *testing.T) {
	s := NewStore()
	admin := Principal{Admin: true}
	for i := 0; i < 5; i++ {
		putQuery(t, s, "SELECT lake FROM WaterTemp", "alice", "limnology", VisibilityPublic)
	}
	mark := s.HighWater()
	for i := 0; i < 5; i++ {
		putQuery(t, s, "SELECT salinity FROM WaterSalinity", "alice", "limnology", VisibilityPublic)
	}
	n := 0
	s.SnapshotAt(mark).Scan(admin, func(rec *QueryRecord) bool {
		if rec.ID > mark {
			t.Fatalf("pinned view leaked query %d > mark %d", rec.ID, mark)
		}
		n++
		return true
	})
	if n != 5 {
		t.Fatalf("pinned view visited %d records, want 5", n)
	}
	// A mark above the current high-water is clamped.
	if got := s.SnapshotAt(mark + 1000).Limit(); got != s.HighWater() {
		t.Fatalf("SnapshotAt clamped limit = %d, want %d", got, s.HighWater())
	}
}

// TestPaginationUnderConcurrentWrites drives cursor pagination the way the
// HTTP layer does — SnapshotAt(mark) + ScanByUserAfter — while a writer
// keeps inserting. Paginating to exhaustion must yield exactly the records
// that existed at the mark: no duplicates, no gaps, no late inserts. Run
// under -race this also exercises the reader/writer interleaving.
func TestPaginationUnderConcurrentWrites(t *testing.T) {
	s := NewStore()
	admin := Principal{Admin: true}
	const initial = 200
	for i := 0; i < initial; i++ {
		putQuery(t, s, fmt.Sprintf("SELECT lake FROM WaterTemp WHERE temp < %d", i), "alice", "limnology", VisibilityPublic)
	}
	mark := s.HighWater()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			putQuery(t, s, "SELECT salinity FROM WaterSalinity", "alice", "limnology", VisibilityPublic)
		}
	}()

	const pageSize = 7
	seen := make(map[QueryID]int)
	var order []QueryID
	after := QueryID(0)
	for {
		var page []QueryID
		s.SnapshotAt(mark).ScanByUserAfter("alice", after, admin, func(rec *QueryRecord) bool {
			page = append(page, rec.ID)
			return len(page) < pageSize
		})
		if len(page) == 0 {
			break
		}
		for _, id := range page {
			seen[id]++
			order = append(order, id)
		}
		after = page[len(page)-1]
	}
	close(stop)
	wg.Wait()

	if len(seen) != initial {
		t.Fatalf("paginated %d distinct records, want %d", len(seen), initial)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("query %d returned %d times", id, n)
		}
		if id > mark {
			t.Fatalf("query %d inserted after the mark leaked into the listing", id)
		}
	}
	for i := 1; i < len(order); i++ {
		if order[i] <= order[i-1] {
			t.Fatalf("pagination out of order at %d: %d after %d", i, order[i], order[i-1])
		}
	}
}

func TestPutBatchAssignsConsecutiveIDs(t *testing.T) {
	s := NewStore()
	var recs []*QueryRecord
	for i := 0; i < 4; i++ {
		rec, err := NewRecordFromSQL("SELECT lake FROM WaterTemp")
		if err != nil {
			t.Fatal(err)
		}
		rec.User = "alice"
		recs = append(recs, rec)
	}
	ids := s.PutBatch(recs)
	if len(ids) != 4 {
		t.Fatalf("PutBatch returned %d IDs", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Fatalf("batch IDs not consecutive: %v", ids)
		}
	}
	if s.Count() != 4 {
		t.Fatalf("count = %d", s.Count())
	}
	// Batch mutations reach the hook in order, like individual Puts.
	s2 := NewStore()
	var hookIDs []QueryID
	s2.SetMutationHook(func(m *Mutation) {
		if m.Op == OpPut {
			hookIDs = append(hookIDs, m.Record.ID)
		}
	})
	var recs2 []*QueryRecord
	for range [3]int{} {
		rec, err := NewRecordFromSQL("SELECT salinity FROM WaterSalinity")
		if err != nil {
			t.Fatal(err)
		}
		recs2 = append(recs2, rec)
	}
	ids2 := s2.PutBatch(recs2)
	if len(hookIDs) != 3 {
		t.Fatalf("hook saw %d mutations, want 3", len(hookIDs))
	}
	for i, id := range ids2 {
		if hookIDs[i] != id {
			t.Fatalf("hook order %v != assigned order %v", hookIDs, ids2)
		}
	}
	if s2.PutBatch(nil) != nil {
		t.Fatal("empty batch should return nil")
	}
}

// TestReplaceTextKeepsBucketOrder pins the invariant the cursor scans binary
// search on: re-indexing a repaired record (ReplaceText) must keep every
// index bucket in ascending ID order, not re-append the ID at the end.
func TestReplaceTextKeepsBucketOrder(t *testing.T) {
	s := NewStore()
	admin := Principal{Admin: true}
	var ids []QueryID
	for i := 0; i < 3; i++ {
		ids = append(ids, putQuery(t, s, "SELECT lake FROM WaterTemp", "alice", "limnology", VisibilityPublic))
	}
	updated, err := NewRecordFromSQL("SELECT temp FROM WaterTemp")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.ReplaceText(ids[1], updated); err != nil {
		t.Fatal(err)
	}
	var order []QueryID
	s.Snapshot().ScanByUser("alice", admin, func(rec *QueryRecord) bool {
		order = append(order, rec.ID)
		return true
	})
	if len(order) != 3 || order[0] != ids[0] || order[1] != ids[1] || order[2] != ids[2] {
		t.Fatalf("byUser order after ReplaceText = %v, want %v", order, ids)
	}
	// Cursor resume after the repaired record must not duplicate anything.
	var tail []QueryID
	s.Snapshot().ScanByUserAfter("alice", ids[1], admin, func(rec *QueryRecord) bool {
		tail = append(tail, rec.ID)
		return true
	})
	if len(tail) != 1 || tail[0] != ids[2] {
		t.Fatalf("ScanByUserAfter(%d) after ReplaceText = %v, want [%d]", ids[1], tail, ids[2])
	}
}
