package storage

import (
	"fmt"

	"repro/internal/engine"
)

// Feature relation names materialised by MaterializeFeatureRelations. They
// follow Figure 1 of the paper, extended with runtime statistics and
// annotations so SQL meta-queries can also reference them.
const (
	RelQueries     = "Queries"
	RelDataSources = "DataSources"
	RelAttributes  = "Attributes"
	RelPredicates  = "Predicates"
	RelQueryStats  = "QueryStats"
	RelAnnotations = "QueryAnnotations"
)

// MaterializeFeatureRelations builds an in-memory engine catalog containing
// the feature relations of Figure 1 for every query visible to the
// principal:
//
//	Queries(qid, qText, quser, qgroup, sessionId, valid)
//	DataSources(qid, relName)
//	Attributes(qid, attrName, relName, clause)
//	Predicates(qid, attrName, relName, op, const)
//	QueryStats(qid, execMillis, resultRows, qualityScore)
//	QueryAnnotations(qid, author, note)
//
// The Meta-query Executor runs SQL meta-queries (such as the one in Figure 1)
// against the returned engine.
func (s *Store) MaterializeFeatureRelations(p Principal) (*engine.Engine, error) {
	eng := engine.New()
	ddl := []string{
		fmt.Sprintf("CREATE TABLE %s (qid INT PRIMARY KEY, qText TEXT, quser TEXT, qgroup TEXT, sessionId INT, valid BOOL)", RelQueries),
		fmt.Sprintf("CREATE TABLE %s (qid INT, relName TEXT)", RelDataSources),
		fmt.Sprintf("CREATE TABLE %s (qid INT, attrName TEXT, relName TEXT, clause TEXT)", RelAttributes),
		fmt.Sprintf("CREATE TABLE %s (qid INT, attrName TEXT, relName TEXT, op TEXT, const TEXT)", RelPredicates),
		fmt.Sprintf("CREATE TABLE %s (qid INT, execMillis FLOAT, resultRows INT, qualityScore FLOAT)", RelQueryStats),
		fmt.Sprintf("CREATE TABLE %s (qid INT, author TEXT, note TEXT)", RelAnnotations),
	}
	for _, stmt := range ddl {
		if _, err := eng.Execute(stmt); err != nil {
			return nil, fmt.Errorf("storage: creating feature relation: %w", err)
		}
	}

	cat := eng.Catalog()
	var queriesRows, sourcesRows, attrsRows, predsRows, statsRows, annRows []engine.Row
	s.Snapshot().Scan(p, func(rec *QueryRecord) bool {
		qid := engine.NewInt(int64(rec.ID))
		queriesRows = append(queriesRows, engine.Row{
			qid, engine.NewText(rec.Text), engine.NewText(rec.User), engine.NewText(rec.Group),
			engine.NewInt(rec.SessionID), engine.NewBool(rec.Valid),
		})
		for _, t := range rec.Tables {
			sourcesRows = append(sourcesRows, engine.Row{qid, engine.NewText(t)})
		}
		seen := make(map[string]bool)
		for _, a := range rec.Attributes {
			key := a.Rel + "." + a.Attr + "/" + a.Clause
			if seen[key] {
				continue
			}
			seen[key] = true
			attrsRows = append(attrsRows, engine.Row{
				qid, engine.NewText(a.Attr), engine.NewText(a.Rel), engine.NewText(a.Clause),
			})
		}
		for _, pr := range rec.Predicates {
			predsRows = append(predsRows, engine.Row{
				qid, engine.NewText(pr.Attr), engine.NewText(pr.Rel),
				engine.NewText(pr.Op), engine.NewText(pr.Const),
			})
		}
		statsRows = append(statsRows, engine.Row{
			qid,
			engine.NewFloat(float64(rec.Stats.ExecTime.Microseconds()) / 1000.0),
			engine.NewInt(int64(rec.Stats.ResultRows)),
			engine.NewFloat(rec.QualityScore),
		})
		for _, ann := range rec.Annotations {
			annRows = append(annRows, engine.Row{qid, engine.NewText(ann.Author), engine.NewText(ann.Text)})
		}
		return true
	})
	inserts := []struct {
		table string
		rows  []engine.Row
	}{
		{RelQueries, queriesRows},
		{RelDataSources, sourcesRows},
		{RelAttributes, attrsRows},
		{RelPredicates, predsRows},
		{RelQueryStats, statsRows},
		{RelAnnotations, annRows},
	}
	for _, ins := range inserts {
		if len(ins.rows) == 0 {
			continue
		}
		if _, err := cat.Insert(ins.table, nil, ins.rows); err != nil {
			return nil, fmt.Errorf("storage: populating %s: %w", ins.table, err)
		}
	}
	return eng, nil
}
