package storage

import (
	"testing"
)

// TestMaterializeFigure1MetaQuery reproduces Figure 1 of the paper end to
// end: the feature relations are materialised into the engine and the exact
// meta-query from the figure ("find all queries that correlate water
// salinity with water temperature data") is executed over them.
func TestMaterializeFigure1MetaQuery(t *testing.T) {
	s := NewStore()
	// Two queries that correlate salinity with temperature...
	target1 := putQuery(t, s,
		"SELECT salinity, temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x AND WaterSalinity.salinity > 2 AND WaterTemp.temp < 18",
		"alice", "limnology", VisibilityPublic)
	target2 := putQuery(t, s,
		"SELECT s.salinity, t.temp FROM WaterSalinity s JOIN WaterTemp t ON s.loc_x = t.loc_x",
		"bob", "limnology", VisibilityPublic)
	// ...and some that do not.
	putQuery(t, s, "SELECT temp FROM WaterTemp WHERE temp > 20", "alice", "limnology", VisibilityPublic)
	putQuery(t, s, "SELECT city FROM CityLocations", "bob", "limnology", VisibilityPublic)
	putQuery(t, s, "SELECT salinity FROM WaterSalinity WHERE depth > 10", "carol", "astro", VisibilityPublic)

	eng, err := s.MaterializeFeatureRelations(admin)
	if err != nil {
		t.Fatalf("MaterializeFeatureRelations: %v", err)
	}

	// The meta-query of Figure 1, verbatim (modulo whitespace).
	metaQuery := `SELECT Q.qid, Q.qText
		FROM Queries Q, Attributes A1, Attributes A2
		WHERE Q.qid = A1.qid AND Q.qid = A2.qid
		AND A1.attrName = 'salinity'
		AND A1.relName = 'WaterSalinity'
		AND A2.attrName = 'temp'
		AND A2.relName = 'WaterTemp'`
	res, err := eng.Execute(metaQuery)
	if err != nil {
		t.Fatalf("executing Figure 1 meta-query: %v", err)
	}
	gotIDs := make(map[int64]bool)
	for _, row := range res.Rows {
		gotIDs[row[0].Int] = true
	}
	if len(gotIDs) != 2 || !gotIDs[int64(target1)] || !gotIDs[int64(target2)] {
		t.Errorf("meta-query returned %v, want exactly queries %d and %d", gotIDs, target1, target2)
	}
}

func TestMaterializeIncludesStatsAndAnnotations(t *testing.T) {
	s := NewStore()
	id := putQuery(t, s, "SELECT temp FROM WaterTemp WHERE temp < 18", "alice", "limnology", VisibilityPublic)
	if err := s.UpdateStats(id, RuntimeStats{ResultRows: 10}); err != nil {
		t.Fatalf("UpdateStats: %v", err)
	}
	if err := s.Annotate(id, alice, Annotation{Text: "Seattle lakes survey"}); err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	eng, err := s.MaterializeFeatureRelations(admin)
	if err != nil {
		t.Fatalf("MaterializeFeatureRelations: %v", err)
	}
	res, err := eng.Execute("SELECT resultRows FROM QueryStats WHERE qid = 1")
	if err != nil {
		t.Fatalf("stats query: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 10 {
		t.Errorf("stats rows = %v", res.Rows)
	}
	res, err = eng.Execute("SELECT note FROM QueryAnnotations WHERE qid = 1")
	if err != nil {
		t.Fatalf("annotation query: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Str != "Seattle lakes survey" {
		t.Errorf("annotation rows = %v", res.Rows)
	}
}

func TestMaterializeRespectsAccessControl(t *testing.T) {
	s := NewStore()
	putQuery(t, s, "SELECT temp FROM WaterTemp", "alice", "limnology", VisibilityPrivate)
	putQuery(t, s, "SELECT salinity FROM WaterSalinity", "bob", "limnology", VisibilityPublic)

	eng, err := s.MaterializeFeatureRelations(carol)
	if err != nil {
		t.Fatalf("MaterializeFeatureRelations: %v", err)
	}
	res, err := eng.Execute("SELECT COUNT(*) FROM Queries")
	if err != nil {
		t.Fatalf("count query: %v", err)
	}
	if res.Rows[0][0].Int != 1 {
		t.Errorf("carol sees %d queries in feature relations, want 1", res.Rows[0][0].Int)
	}
}

func TestMaterializeEmptyStore(t *testing.T) {
	s := NewStore()
	eng, err := s.MaterializeFeatureRelations(admin)
	if err != nil {
		t.Fatalf("MaterializeFeatureRelations: %v", err)
	}
	res, err := eng.Execute("SELECT COUNT(*) FROM Queries")
	if err != nil {
		t.Fatalf("count query: %v", err)
	}
	if res.Rows[0][0].Int != 0 {
		t.Errorf("count = %v, want 0", res.Rows[0][0])
	}
}

func TestRecordAnalysisRoundTrip(t *testing.T) {
	rec, err := NewRecordFromSQL("SELECT AVG(temp) FROM WaterTemp WHERE temp < 18 GROUP BY lake")
	if err != nil {
		t.Fatalf("NewRecordFromSQL: %v", err)
	}
	a := rec.Analysis()
	if len(a.Tables) != 1 || a.Tables[0] != "WaterTemp" {
		t.Errorf("analysis tables = %v", a.Tables)
	}
	if len(a.Predicates) != 1 || a.Predicates[0].Column != "temp" {
		t.Errorf("analysis predicates = %+v", a.Predicates)
	}
	if len(a.Aggregates) != 1 || a.Aggregates[0] != "AVG" {
		t.Errorf("analysis aggregates = %v", a.Aggregates)
	}
	if len(a.GroupByColumns) != 1 {
		t.Errorf("analysis group by = %v", a.GroupByColumns)
	}
}
