package storage

import (
	"strconv"
	"time"

	"repro/internal/telemetry"
)

// storeMetrics holds the store's instruments. The maps and histogram pointers
// are read-only after EnableMetrics builds them; the store guards the
// *storeMetrics pointer itself with commitMu, so mutation paths read it while
// already holding the lock and pay no extra synchronisation.
type storeMetrics struct {
	// mutations counts committed mutations by op. Built eagerly for every
	// known op; an unknown op indexes to a nil counter, which Inc ignores.
	mutations map[MutationOp]*telemetry.Counter
	// commitHold is the commit-lock hold time of each mutating operation —
	// the store's write-stall budget, including every bus callback that ran
	// under the lock.
	commitHold *telemetry.Histogram
	// capture is the time StateWith spends copying the store under the
	// commit lock (the snapshot write-stall).
	capture *telemetry.Histogram
	// busVec times each bus callback by subscriber name; the WAL slot
	// reports as subscriber="wal".
	busVec      *telemetry.HistogramVec
	walCallback *telemetry.Histogram
	// durabilityWait is the time a mutating operation spent waiting for its
	// WAL group-commit fsync after releasing the commit lock — latency the
	// caller still pays, but that no longer stalls other writers.
	durabilityWait *telemetry.Histogram
}

// allMutationOps lists every op for eager counter registration, so a scrape
// shows zero-valued families before the first mutation of each kind.
var allMutationOps = []MutationOp{
	OpPut, OpAnnotate, OpSetVisibility, OpDelete, OpAssignSession, OpAddEdge,
	OpMarkInvalid, OpMarkValid, OpMarkStale, OpUpdateStats, OpSetSample,
	OpSetQuality, OpReplaceText,
}

// EnableMetrics registers the store's instruments on reg and starts
// recording. Call it once, before attaching bus subscribers if their callback
// durations should be observed from the first mutation (subscribers attached
// earlier are picked up too). A nil registry leaves the store uninstrumented.
func (s *Store) EnableMetrics(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m := &storeMetrics{
		mutations: make(map[MutationOp]*telemetry.Counter, len(allMutationOps)),
		commitHold: reg.Histogram("cqms_store_commit_lock_hold_seconds",
			"Time the commit lock was held per mutating store operation, including bus callbacks.", nil),
		capture: reg.Histogram("cqms_store_state_capture_seconds",
			"Time spent copying the store state under the commit lock for a snapshot.", nil),
		busVec: reg.HistogramVec("cqms_bus_callback_seconds",
			"Mutation-bus callback duration by subscriber; runs under the commit lock, so this is each subscriber's share of the write stall.",
			nil, "subscriber"),
		durabilityWait: reg.Histogram("cqms_store_durability_wait_seconds",
			"Time a mutating operation waited, outside the commit lock, for its WAL group-commit fsync.", nil),
	}
	mutVec := reg.CounterVec("cqms_store_mutations_total",
		"Committed store mutations by operation.", "op")
	for _, op := range allMutationOps {
		m.mutations[op] = mutVec.With(string(op))
	}
	m.walCallback = m.busVec.With("wal")

	reg.GaugeFunc("cqms_store_records",
		"Number of query records currently stored.",
		func() float64 { return float64(s.Count()) })
	reg.GaugeFunc("cqms_store_session_edges",
		"Number of session edges currently stored.",
		func() float64 {
			s.idx.RLock()
			n := len(s.idx.edges)
			s.idx.RUnlock()
			return float64(n)
		})
	shardVec := reg.GaugeFuncVec("cqms_store_shard_records",
		"Records per lock-striped shard (admin-only; exposes the ID hash distribution).", "shard")
	for i := range s.shards {
		sh := &s.shards[i]
		shardVec.With(func() float64 {
			sh.mu.RLock()
			n := len(sh.recs)
			sh.mu.RUnlock()
			return float64(n)
		}, strconv.Itoa(i))
	}
	reg.AdminOnly("cqms_store_shard_records")

	s.commitMu.Lock()
	s.metrics = m
	for i := range s.subs {
		s.subs[i].hist = m.busVec.With(s.subs[i].name)
	}
	s.commitMu.Unlock()
}

// lockCommit takes the commit lock and stamps the acquisition time when the
// store is instrumented; unlockCommit observes the hold duration. Mutating
// methods use the pair instead of raw Lock/Unlock.
func (s *Store) lockCommit() {
	s.commitMu.Lock()
	if s.metrics != nil {
		s.commitLockedAt = time.Now()
	}
}

func (s *Store) unlockCommit() {
	if m := s.metrics; m != nil {
		m.commitHold.Observe(time.Since(s.commitLockedAt))
	}
	s.commitMu.Unlock()
}

// commitAndWait releases the commit lock and then, when a durability waiter
// is installed and the mutation reached the WAL, blocks until the WAL batch
// covering seq is durable. Waiting after the unlock is what turns concurrent
// writers into one group commit: the next writer sequences (and joins the
// in-flight fsync batch) while this one waits.
func (s *Store) commitAndWait(seq uint64) {
	wait := s.durable
	met := s.metrics
	s.unlockCommit()
	if wait == nil || seq == 0 {
		return
	}
	if met == nil {
		wait(seq)
		return
	}
	start := time.Now()
	wait(seq)
	met.durabilityWait.Observe(time.Since(start))
}
