package storage

import (
	"encoding/json"
	"fmt"
)

// MutationOp names a mutating store operation. The op codes are part of the
// on-disk WAL format: changing an existing code breaks replay of old logs.
type MutationOp string

// Mutation operations. Every mutating Store method has a corresponding op so
// that replaying a mutation stream rebuilds the store — records, edges and
// all inverted indexes — exactly as the live operations built it.
const (
	OpPut           MutationOp = "put"
	OpAnnotate      MutationOp = "annotate"
	OpSetVisibility MutationOp = "visibility"
	OpDelete        MutationOp = "delete"
	OpAssignSession MutationOp = "assign-session"
	OpAddEdge       MutationOp = "add-edge"
	OpMarkInvalid   MutationOp = "mark-invalid"
	OpMarkValid     MutationOp = "mark-valid"
	OpMarkStale     MutationOp = "mark-stale"
	OpUpdateStats   MutationOp = "update-stats"
	OpSetSample     MutationOp = "set-sample"
	OpSetQuality    MutationOp = "set-quality"
	OpReplaceText   MutationOp = "replace-text"
)

// Mutation is one typed write-ahead-log entry: the complete description of a
// single mutating Store operation, sufficient to replay it. Access control
// has already been enforced by the time a mutation is emitted, so replaying
// does not re-check principals.
type Mutation struct {
	Op MutationOp `json:"op"`
	ID QueryID    `json:"id,omitempty"`

	// Record carries the full record for OpPut and the replacement fields
	// for OpReplaceText.
	Record     *QueryRecord  `json:"record,omitempty"`
	Annotation *Annotation   `json:"annotation,omitempty"`
	Visibility Visibility    `json:"vis,omitempty"`
	SessionID  int64         `json:"session,omitempty"`
	Edge       *SessionEdge  `json:"edge,omitempty"`
	Reason     string        `json:"reason,omitempty"`
	Stale      bool          `json:"stale,omitempty"`
	Stats      *RuntimeStats `json:"stats,omitempty"`
	Sample     *OutputSample `json:"sample,omitempty"`
	Score      float64       `json:"score,omitempty"`
}

// Encode serialises the mutation for the WAL payload.
func (m *Mutation) Encode() ([]byte, error) {
	return json.Marshal(m)
}

// DecodeMutation parses a WAL payload back into a mutation.
func DecodeMutation(b []byte) (*Mutation, error) {
	var m Mutation
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("storage: decoding mutation: %w", err)
	}
	if m.Op == "" {
		return nil, fmt.Errorf("storage: decoding mutation: missing op")
	}
	return &m, nil
}

// MutationHook observes every successful mutation, invoked while the store
// lock is held so hooks see mutations in exactly their apply order. The WAL
// manager installs a hook that appends the encoded mutation to the log.
type MutationHook func(*Mutation)

// SetMutationHook installs the mutation observer (nil disables it).
func (s *Store) SetMutationHook(h MutationHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// emit forwards a mutation to the hook. Callers must hold the write lock.
func (s *Store) emit(m *Mutation) {
	if s.hook != nil {
		s.hook(m)
	}
}

// Apply replays one mutation against the store without emitting it to the
// hook. It is the recovery path: live operations and Apply share the same
// internal state transitions, so a store rebuilt by replaying a mutation
// stream is identical — contents and inverted indexes — to the store that
// emitted the stream. Apply takes ownership of the mutation and its record:
// replay hands over freshly decoded values.
func (s *Store) Apply(m *Mutation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.applyLocked(m)
}

// applyLocked dispatches a mutation to the shared state-transition helpers.
// Callers must hold the write lock.
func (s *Store) applyLocked(m *Mutation) error {
	switch m.Op {
	case OpPut:
		if m.Record == nil {
			return fmt.Errorf("storage: apply %s: missing record", m.Op)
		}
		s.insert(m.Record)
		return nil
	case OpAnnotate:
		if m.Annotation == nil {
			return fmt.Errorf("storage: apply %s: missing annotation", m.Op)
		}
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		rec.Annotations = append(rec.Annotations, *m.Annotation)
		return nil
	case OpSetVisibility:
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		rec.Visibility = m.Visibility
		return nil
	case OpDelete:
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		s.remove(rec)
		return nil
	case OpAssignSession:
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		s.reassignSession(rec, m.SessionID)
		return nil
	case OpAddEdge:
		if m.Edge == nil {
			return fmt.Errorf("storage: apply %s: missing edge", m.Op)
		}
		if _, err := s.lookup(m.Edge.From); err != nil {
			return err
		}
		if _, err := s.lookup(m.Edge.To); err != nil {
			return err
		}
		if _, dup := s.edgeSet[*m.Edge]; dup {
			return nil // replayed logs may hold duplicates
		}
		s.edges = append(s.edges, *m.Edge)
		s.edgeSet[*m.Edge] = struct{}{}
		return nil
	case OpMarkInvalid:
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		rec.Valid = false
		rec.InvalidReason = m.Reason
		return nil
	case OpMarkValid:
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		rec.Valid = true
		rec.InvalidReason = ""
		return nil
	case OpMarkStale:
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		rec.StatsStale = m.Stale
		return nil
	case OpUpdateStats:
		if m.Stats == nil {
			return fmt.Errorf("storage: apply %s: missing stats", m.Op)
		}
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		rec.Stats = *m.Stats
		rec.StatsStale = false
		return nil
	case OpSetSample:
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		rec.Sample = m.Sample
		return nil
	case OpSetQuality:
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		rec.QualityScore = m.Score
		return nil
	case OpReplaceText:
		if m.Record == nil {
			return fmt.Errorf("storage: apply %s: missing record", m.Op)
		}
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		s.replaceText(rec, m.Record)
		return nil
	default:
		return fmt.Errorf("storage: apply: unknown op %q", m.Op)
	}
}

// lookup returns the live record for an ID. Callers must hold a lock.
func (s *Store) lookup(id QueryID) (*QueryRecord, error) {
	rec, ok := s.queries[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	return rec, nil
}

// insert places a record with an already-assigned ID into the store and all
// inverted indexes. It is shared by the live Put path and WAL replay; replay
// of a Put whose ID already exists (a snapshot/segment overlap) replaces the
// older copy so recovery stays idempotent. Callers must hold the write lock.
func (s *Store) insert(rec *QueryRecord) {
	if old, ok := s.queries[rec.ID]; ok {
		s.remove(old)
	}
	s.queries[rec.ID] = rec
	s.order = append(s.order, rec.ID)
	s.index(rec)
	if rec.ID > s.nextID {
		s.nextID = rec.ID
	}
}

// remove deletes a record from the store, its indexes and the edge relation.
// Callers must hold the write lock.
func (s *Store) remove(rec *QueryRecord) {
	delete(s.queries, rec.ID)
	for i, qid := range s.order {
		if qid == rec.ID {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.removeFromIndexes(rec)
}

// reassignSession moves a record between session index buckets. Callers must
// hold the write lock.
func (s *Store) reassignSession(rec *QueryRecord, sessionID int64) {
	if rec.SessionID != 0 {
		old := s.bySession[rec.SessionID]
		kept := old[:0]
		for _, x := range old {
			if x != rec.ID {
				kept = append(kept, x)
			}
		}
		s.bySession[rec.SessionID] = kept
	}
	rec.SessionID = sessionID
	s.bySession[sessionID] = append(s.bySession[sessionID], rec.ID)
}

// replaceText rewrites the record's text and feature relations from the
// update, re-indexing it. Callers must hold the write lock.
func (s *Store) replaceText(rec, updated *QueryRecord) {
	s.removeFromIndexes(rec)
	rec.Text = updated.Text
	rec.Canonical = updated.Canonical
	rec.Template = updated.Template
	rec.Fingerprint = updated.Fingerprint
	rec.ExactHash = updated.ExactHash
	rec.Tables = updated.Tables
	rec.Attributes = updated.Attributes
	rec.Predicates = updated.Predicates
	rec.Aggregates = updated.Aggregates
	rec.GroupBy = updated.GroupBy
	rec.Features = updated.Features
	s.index(rec)
}
