package storage

import (
	"encoding/json"
	"fmt"
)

// MutationOp names a mutating store operation. The op codes are part of the
// on-disk WAL format: changing an existing code breaks replay of old logs.
type MutationOp string

// Mutation operations. Every mutating Store method has a corresponding op so
// that replaying a mutation stream rebuilds the store — records, edges and
// all inverted indexes — exactly as the live operations built it.
const (
	OpPut           MutationOp = "put"
	OpAnnotate      MutationOp = "annotate"
	OpSetVisibility MutationOp = "visibility"
	OpDelete        MutationOp = "delete"
	OpAssignSession MutationOp = "assign-session"
	OpAddEdge       MutationOp = "add-edge"
	OpMarkInvalid   MutationOp = "mark-invalid"
	OpMarkValid     MutationOp = "mark-valid"
	OpMarkStale     MutationOp = "mark-stale"
	OpUpdateStats   MutationOp = "update-stats"
	OpSetSample     MutationOp = "set-sample"
	OpSetQuality    MutationOp = "set-quality"
	OpReplaceText   MutationOp = "replace-text"
)

// Mutation is one typed write-ahead-log entry: the complete description of a
// single mutating Store operation, sufficient to replay it. Access control
// has already been enforced by the time a mutation is emitted, so replaying
// does not re-check principals.
type Mutation struct {
	Op MutationOp `json:"op"`
	ID QueryID    `json:"id,omitempty"`

	// Record carries the full record for OpPut and the replacement fields
	// for OpReplaceText.
	Record     *QueryRecord  `json:"record,omitempty"`
	Annotation *Annotation   `json:"annotation,omitempty"`
	Visibility Visibility    `json:"vis,omitempty"`
	SessionID  int64         `json:"session,omitempty"`
	Edge       *SessionEdge  `json:"edge,omitempty"`
	Reason     string        `json:"reason,omitempty"`
	Stale      bool          `json:"stale,omitempty"`
	Stats      *RuntimeStats `json:"stats,omitempty"`
	Sample     *OutputSample `json:"sample,omitempty"`
	Score      float64       `json:"score,omitempty"`
}

// Encode serialises the mutation for the WAL payload.
func (m *Mutation) Encode() ([]byte, error) {
	return json.Marshal(m)
}

// DecodeMutation parses a WAL payload back into a mutation.
func DecodeMutation(b []byte) (*Mutation, error) {
	var m Mutation
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("storage: decoding mutation: %w", err)
	}
	if m.Op == "" {
		return nil, fmt.Errorf("storage: decoding mutation: missing op")
	}
	return &m, nil
}

// MutationHook observes every successful mutation, invoked under the store's
// commit lock so hooks see mutations in exactly their apply order. The WAL
// manager installs a hook that appends the encoded mutation to the log.
type MutationHook func(*Mutation)

// SetMutationHook installs the mutation observer (nil disables it).
func (s *Store) SetMutationHook(h MutationHook) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.hook = h
}

// emit forwards a mutation to the hook. Callers must hold the commit lock.
func (s *Store) emit(m *Mutation) {
	if s.hook != nil {
		s.hook(m)
	}
}

// Apply replays one mutation against the store without emitting it to the
// hook. It is the recovery path: live operations and Apply share the same
// internal state transitions, so a store rebuilt by replaying a mutation
// stream is identical — contents, shard placement and inverted indexes — to
// the store that emitted the stream. Apply takes ownership of the mutation
// and its record: replay hands over freshly decoded values.
func (s *Store) Apply(m *Mutation) error {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	return s.apply(m)
}

// apply dispatches a mutation to the shared state-transition helpers. Every
// transition is copy-on-write: the current record version stays untouched
// for concurrent readers and an updated copy replaces it in its shard.
// Callers must hold the commit lock.
func (s *Store) apply(m *Mutation) error {
	switch m.Op {
	case OpPut:
		if m.Record == nil {
			return fmt.Errorf("storage: apply %s: missing record", m.Op)
		}
		s.insert(m.Record)
		return nil
	case OpAnnotate:
		if m.Annotation == nil {
			return fmt.Errorf("storage: apply %s: missing annotation", m.Op)
		}
		return s.update(m.ID, func(next, old *QueryRecord) {
			next.Annotations = append(append([]Annotation(nil), old.Annotations...), *m.Annotation)
		})
	case OpSetVisibility:
		return s.update(m.ID, func(next, _ *QueryRecord) {
			next.Visibility = m.Visibility
		})
	case OpDelete:
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		s.remove(rec)
		return nil
	case OpAssignSession:
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		s.reassignSession(rec, m.SessionID)
		return nil
	case OpAddEdge:
		if m.Edge == nil {
			return fmt.Errorf("storage: apply %s: missing edge", m.Op)
		}
		if _, err := s.lookup(m.Edge.From); err != nil {
			return err
		}
		if _, err := s.lookup(m.Edge.To); err != nil {
			return err
		}
		if _, dup := s.edgeSet[*m.Edge]; dup {
			return nil // replayed logs may hold duplicates
		}
		s.edgeSet[*m.Edge] = struct{}{}
		s.idx.Lock()
		s.idx.edges = append(s.idx.edges, *m.Edge)
		s.idx.edgesFrom[m.Edge.From] = append(s.idx.edgesFrom[m.Edge.From], *m.Edge)
		s.idx.Unlock()
		return nil
	case OpMarkInvalid:
		return s.update(m.ID, func(next, _ *QueryRecord) {
			next.Valid = false
			next.InvalidReason = m.Reason
		})
	case OpMarkValid:
		return s.update(m.ID, func(next, _ *QueryRecord) {
			next.Valid = true
			next.InvalidReason = ""
		})
	case OpMarkStale:
		return s.update(m.ID, func(next, _ *QueryRecord) {
			next.StatsStale = m.Stale
		})
	case OpUpdateStats:
		if m.Stats == nil {
			return fmt.Errorf("storage: apply %s: missing stats", m.Op)
		}
		return s.update(m.ID, func(next, _ *QueryRecord) {
			next.Stats = *m.Stats
			next.StatsStale = false
		})
	case OpSetSample:
		return s.update(m.ID, func(next, _ *QueryRecord) {
			next.Sample = m.Sample
		})
	case OpSetQuality:
		return s.update(m.ID, func(next, _ *QueryRecord) {
			next.QualityScore = m.Score
		})
	case OpReplaceText:
		if m.Record == nil {
			return fmt.Errorf("storage: apply %s: missing record", m.Op)
		}
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		s.replaceText(rec, m.Record)
		return nil
	default:
		return fmt.Errorf("storage: apply: unknown op %q", m.Op)
	}
}

// lookup returns the current version of a record. Callers must hold the
// commit lock (mutation paths use it to read-modify-write).
func (s *Store) lookup(id QueryID) (*QueryRecord, error) {
	rec, ok := s.loadRecord(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	return rec, nil
}

// update performs one copy-on-write field mutation: it shallow-copies the
// current record version, lets mutate replace the fields it changes, and
// publishes the copy. Callers must hold the commit lock.
func (s *Store) update(id QueryID, mutate func(next, old *QueryRecord)) error {
	rec, err := s.lookup(id)
	if err != nil {
		return err
	}
	next := rec.shallowCopy()
	mutate(next, rec)
	s.storeRecord(next)
	return nil
}

// insert places a record with an already-assigned ID into its shard and all
// inverted indexes. It is shared by the live Put path and WAL replay; replay
// of a Put whose ID already exists (a snapshot/segment overlap) replaces the
// older copy so recovery stays idempotent. The record becomes visible to
// scans only once its ID is published to the insertion order, which happens
// after the shard holds the record. Callers must hold the commit lock.
func (s *Store) insert(rec *QueryRecord) {
	if old, ok := s.loadRecord(rec.ID); ok {
		s.remove(old)
	}
	rec.prepare()
	s.storeRecord(rec)
	s.count.Add(1)
	s.idx.Lock()
	s.idx.order = append(s.idx.order, rec.ID)
	s.indexLocked(rec)
	s.idx.Unlock()
	if int64(rec.ID) > s.nextID.Load() {
		s.nextID.Store(int64(rec.ID))
	}
}

// remove deletes a record from the indexes, the edge relation and its shard.
// The ID disappears from the insertion order first, so a scan that still
// resolves the record observes its last committed version. Callers must hold
// the commit lock.
func (s *Store) remove(rec *QueryRecord) {
	s.idx.Lock()
	order := make([]QueryID, 0, len(s.idx.order)-1)
	for _, qid := range s.idx.order {
		if qid != rec.ID {
			order = append(order, qid)
		}
	}
	s.idx.order = order
	s.removeFromIndexesLocked(rec)
	s.removeEdgesLocked(rec)
	s.idx.Unlock()
	s.deleteRecord(rec.ID)
	s.count.Add(-1)
}

// reassignSession moves a record between session index buckets and publishes
// an updated record version. Callers must hold the commit lock.
func (s *Store) reassignSession(rec *QueryRecord, sessionID int64) {
	next := rec.shallowCopy()
	next.SessionID = sessionID
	s.storeRecord(next)
	s.idx.Lock()
	if rec.SessionID != 0 {
		removeFromBucket(s.idx.bySession, rec.SessionID, rec.ID)
	}
	if sessionID != 0 {
		insertIntoBucket(s.idx.bySession, sessionID, rec.ID)
	}
	s.idx.Unlock()
}

// replaceText publishes a record version with the text and feature relations
// of the update, re-indexing it. The record's session edges survive: a text
// repair does not unlink the query from its session history. De-indexing and
// re-indexing happen in one idx critical section so an indexed scan never
// misses the record mid-replacement. Callers must hold the commit lock.
func (s *Store) replaceText(rec, updated *QueryRecord) {
	next := rec.shallowCopy()
	next.Text = updated.Text
	next.Canonical = updated.Canonical
	next.Template = updated.Template
	next.Fingerprint = updated.Fingerprint
	next.ExactHash = updated.ExactHash
	next.Tables = updated.Tables
	next.Attributes = updated.Attributes
	next.Predicates = updated.Predicates
	next.Aggregates = updated.Aggregates
	next.GroupBy = updated.GroupBy
	next.Features = updated.Features
	next.prepare()
	s.storeRecord(next)
	s.idx.Lock()
	s.removeFromIndexesLocked(rec)
	s.indexLocked(next)
	s.idx.Unlock()
}
