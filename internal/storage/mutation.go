package storage

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/telemetry"
)

// MutationOp names a mutating store operation. The op codes are part of the
// on-disk WAL format: changing an existing code breaks replay of old logs.
type MutationOp string

// Mutation operations. Every mutating Store method has a corresponding op so
// that replaying a mutation stream rebuilds the store — records, edges and
// all inverted indexes — exactly as the live operations built it.
const (
	OpPut           MutationOp = "put"
	OpAnnotate      MutationOp = "annotate"
	OpSetVisibility MutationOp = "visibility"
	OpDelete        MutationOp = "delete"
	OpAssignSession MutationOp = "assign-session"
	OpAddEdge       MutationOp = "add-edge"
	OpMarkInvalid   MutationOp = "mark-invalid"
	OpMarkValid     MutationOp = "mark-valid"
	OpMarkStale     MutationOp = "mark-stale"
	OpUpdateStats   MutationOp = "update-stats"
	OpSetSample     MutationOp = "set-sample"
	OpSetQuality    MutationOp = "set-quality"
	OpReplaceText   MutationOp = "replace-text"
)

// Mutation is one typed write-ahead-log entry: the complete description of a
// single mutating Store operation, sufficient to replay it. Access control
// has already been enforced by the time a mutation is emitted, so replaying
// does not re-check principals.
type Mutation struct {
	Op MutationOp `json:"op"`
	ID QueryID    `json:"id,omitempty"`

	// Record carries the full record for OpPut and the replacement fields
	// for OpReplaceText.
	Record     *QueryRecord  `json:"record,omitempty"`
	Annotation *Annotation   `json:"annotation,omitempty"`
	Visibility Visibility    `json:"vis,omitempty"`
	SessionID  int64         `json:"session,omitempty"`
	Edge       *SessionEdge  `json:"edge,omitempty"`
	Reason     string        `json:"reason,omitempty"`
	Stale      bool          `json:"stale,omitempty"`
	Stats      *RuntimeStats `json:"stats,omitempty"`
	Sample     *OutputSample `json:"sample,omitempty"`
	Score      float64       `json:"score,omitempty"`

	// prev and next are the record versions before and after the mutation
	// was applied, stashed by the apply path for event-bus subscribers that
	// maintain derived state (incremental counters need the old version to
	// decrement). They are unexported so they stay out of the WAL JSON;
	// replay re-derives them while re-applying.
	prev *QueryRecord
	next *QueryRecord

	// walSeq is the WAL sequence the durability slot assigned this mutation
	// (0 when the store runs without a WAL). Unexported so it stays out of
	// the WAL JSON; write paths use it to wait for group-commit durability
	// after releasing the commit lock.
	walSeq uint64
}

// SetWALSeq records the WAL sequence assigned to this mutation. The WAL slot
// calls it from inside the mutation hook, under the commit lock.
func (m *Mutation) SetWALSeq(seq uint64) { m.walSeq = seq }

// WALSeq returns the WAL sequence the durability slot assigned (0 when the
// mutation was not logged).
func (m *Mutation) WALSeq() uint64 { return m.walSeq }

// Prev returns the record version the mutation replaced (nil for a fresh
// OpPut and for ops that do not touch a record). Populated only on mutations
// delivered through the event bus; the record is immutable and shared.
func (m *Mutation) Prev() *QueryRecord { return m.prev }

// Next returns the record version the mutation produced (nil for OpDelete
// and ops that do not touch a record). Populated only on mutations delivered
// through the event bus; the record is immutable and shared.
func (m *Mutation) Next() *QueryRecord { return m.next }

// Encode serialises the mutation for the WAL payload.
func (m *Mutation) Encode() ([]byte, error) {
	return json.Marshal(m)
}

// DecodeMutation parses a WAL payload back into a mutation.
func DecodeMutation(b []byte) (*Mutation, error) {
	var m Mutation
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("storage: decoding mutation: %w", err)
	}
	if m.Op == "" {
		return nil, fmt.Errorf("storage: decoding mutation: missing op")
	}
	return &m, nil
}

// MutationHook observes mutations, invoked under the store's commit lock so
// subscribers see mutations in exactly their apply order.
type MutationHook func(*Mutation)

// The mutation event bus. Every committed mutation fans out, in commit
// order, to one durability slot plus any number of derived-state
// subscribers:
//
//   - The WAL slot (SetMutationHook) is always notified first, so the log's
//     total order matches apply order and everything a derived subscriber
//     saw is recoverable. It receives only live mutations — replaying the
//     log must not re-append it.
//   - Subscribers (Subscribe) receive live AND replayed mutations, enriched
//     with the Prev/Next record versions, so incrementally maintained state
//     (stats counters, the miner feed) stays correct through crash recovery
//     without a rebuild scan. After RestoreState wholesale-replaces the
//     store, each subscriber's Reset hook fires instead, because a snapshot
//     load has no per-record mutation stream.
//
// All callbacks run under the commit lock: they must be fast and must not
// call back into mutating store methods.

// busSubscriber is one derived-state registration on the mutation bus.
type busSubscriber struct {
	id         int
	name       string
	fn         MutationHook
	reset      func()
	checkpoint func() (version int, data []byte, err error)
	restore    func(version int, data []byte) error
	// hist times this subscriber's callbacks (nil when the store is not
	// instrumented); since callbacks run under the commit lock, it is the
	// subscriber's share of the write stall.
	hist *telemetry.Histogram
}

// SubscribeOptions configures a mutation-bus subscription.
type SubscribeOptions struct {
	// Init, when set, runs once under the commit lock immediately after
	// registration, so the subscriber can seed itself from the store's
	// current contents without a mutation slipping in between.
	Init func()
	// Reset, when set, runs under the commit lock after RestoreState has
	// replaced the store's contents; the subscriber must rebuild its derived
	// state from the store.
	Reset func()
	// Checkpoint, when set, serialises the subscriber's derived state. It
	// runs under the commit lock in the same critical section that copies
	// the store state (StateWithCheckpoints), so the checkpoint is exactly
	// consistent with the snapshot it rides in. Returning an error omits the
	// subscriber's section from the snapshot — recovery then falls back to
	// Reset.
	Checkpoint func() (version int, data []byte, err error)
	// Restore, when set, loads a checkpoint previously produced by
	// Checkpoint. It runs under the commit lock after the store's contents
	// have been restored (RestoreStateWithCheckpoints); a version the
	// subscriber no longer understands, or any decode failure, must be
	// returned as an error — the bus then falls back to the Reset rebuild.
	Restore func(version int, data []byte) error
}

// Subscribe registers a derived-state subscriber on the mutation event bus
// and returns a function that removes it. Subscribers are notified in
// subscription order, always after the WAL slot.
func (s *Store) Subscribe(name string, fn MutationHook, opts SubscribeOptions) (cancel func()) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.nextSubID++
	id := s.nextSubID
	sub := busSubscriber{
		id: id, name: name, fn: fn,
		reset: opts.Reset, checkpoint: opts.Checkpoint, restore: opts.Restore,
	}
	if s.metrics != nil {
		sub.hist = s.metrics.busVec.With(name)
	}
	s.subs = append(s.subs, sub)
	if opts.Init != nil {
		opts.Init()
	}
	return func() {
		s.commitMu.Lock()
		defer s.commitMu.Unlock()
		for i, sub := range s.subs {
			if sub.id == id {
				s.subs = append(s.subs[:i:i], s.subs[i+1:]...)
				return
			}
		}
	}
}

// SetMutationHook installs the durability observer in the bus's WAL slot
// (nil disables it). The WAL manager uses it to append the encoded mutation
// to the log; it is always notified first and never sees replayed mutations.
func (s *Store) SetMutationHook(h MutationHook) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.hook = h
}

// SetDurabilityWaiter installs the bus's durability-wait slot (nil disables
// it). Mutating methods call it with the highest WAL sequence their emitted
// mutations were assigned — after releasing the commit lock, so the fsync
// wait of one batch never blocks the next batch from sequencing. The WAL
// manager points it at the log's group-commit WaitDurable.
func (s *Store) SetDurabilityWaiter(wait func(seq uint64)) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.durable = wait
}

// observed reports whether anything listens on the bus, letting write paths
// skip building a Mutation nobody will see. Callers must hold the commit
// lock.
func (s *Store) observed() bool {
	return s.hook != nil || len(s.subs) > 0
}

// emit fans a live mutation out to the WAL slot first, then to every
// subscriber in subscription order. When the store is instrumented, each
// callback is timed individually (clock reads happen only on the metered
// path). Callers must hold the commit lock.
func (s *Store) emit(m *Mutation) {
	met := s.metrics
	if met == nil {
		if s.hook != nil {
			s.hook(m)
		}
		for _, sub := range s.subs {
			sub.fn(m)
		}
		return
	}
	met.mutations[m.Op].Inc()
	if s.hook != nil {
		start := time.Now()
		s.hook(m)
		met.walCallback.Observe(time.Since(start))
	}
	for i := range s.subs {
		sub := &s.subs[i]
		start := time.Now()
		sub.fn(m)
		sub.hist.Observe(time.Since(start))
	}
}

// emitReplay fans a replayed mutation out to the subscribers only: the WAL
// slot must not see it, or recovery would re-append the log to itself.
// Callers must hold the commit lock.
func (s *Store) emitReplay(m *Mutation) {
	met := s.metrics
	if met == nil {
		for _, sub := range s.subs {
			sub.fn(m)
		}
		return
	}
	met.mutations[m.Op].Inc()
	for i := range s.subs {
		sub := &s.subs[i]
		start := time.Now()
		sub.fn(m)
		sub.hist.Observe(time.Since(start))
	}
}

// notifyReset invokes every subscriber's Reset hook (after RestoreState).
// Callers must hold the commit lock.
func (s *Store) notifyReset() {
	for _, sub := range s.subs {
		if sub.reset != nil {
			sub.reset()
		}
	}
}

// Apply replays one mutation against the store without emitting it to the
// WAL slot. It is the recovery path: live operations and Apply share the
// same internal state transitions, so a store rebuilt by replaying a
// mutation stream is identical — contents, shard placement and inverted
// indexes — to the store that emitted the stream. Derived-state subscribers
// on the event bus DO observe replayed mutations, so their counters are
// rebuilt incrementally alongside the store. Apply takes ownership of the
// mutation and its record: replay hands over freshly decoded values.
func (s *Store) Apply(m *Mutation) error {
	s.lockCommit()
	defer s.unlockCommit()
	if err := s.apply(m); err != nil {
		return err
	}
	s.emitReplay(m)
	return nil
}

// apply dispatches a mutation to the shared state-transition helpers. Every
// transition is copy-on-write: the current record version stays untouched
// for concurrent readers and an updated copy replaces it in its shard. On
// success the mutation's prev/next record versions are stashed for bus
// subscribers. Callers must hold the commit lock.
func (s *Store) apply(m *Mutation) error {
	// applyUpdate runs one copy-on-write field update and records the
	// before/after versions on the mutation.
	applyUpdate := func(id QueryID, mutate func(next, old *QueryRecord)) error {
		old, next, err := s.update(id, mutate)
		if err != nil {
			return err
		}
		m.prev, m.next = old, next
		return nil
	}
	switch m.Op {
	case OpPut:
		if m.Record == nil {
			return fmt.Errorf("storage: apply %s: missing record", m.Op)
		}
		m.prev = s.insert(m.Record)
		m.next = m.Record
		return nil
	case OpAnnotate:
		if m.Annotation == nil {
			return fmt.Errorf("storage: apply %s: missing annotation", m.Op)
		}
		return applyUpdate(m.ID, func(next, old *QueryRecord) {
			next.Annotations = append(append([]Annotation(nil), old.Annotations...), *m.Annotation)
		})
	case OpSetVisibility:
		return applyUpdate(m.ID, func(next, _ *QueryRecord) {
			next.Visibility = m.Visibility
		})
	case OpDelete:
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		s.remove(rec)
		m.prev = rec
		return nil
	case OpAssignSession:
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		m.prev, m.next = rec, s.reassignSession(rec, m.SessionID)
		return nil
	case OpAddEdge:
		if m.Edge == nil {
			return fmt.Errorf("storage: apply %s: missing edge", m.Op)
		}
		if _, err := s.lookup(m.Edge.From); err != nil {
			return err
		}
		if _, err := s.lookup(m.Edge.To); err != nil {
			return err
		}
		if _, dup := s.edgeSet[*m.Edge]; dup {
			return nil // replayed logs may hold duplicates
		}
		s.edgeSet[*m.Edge] = struct{}{}
		s.idx.Lock()
		s.idx.edges = append(s.idx.edges, *m.Edge)
		s.idx.edgesFrom[m.Edge.From] = append(s.idx.edgesFrom[m.Edge.From], *m.Edge)
		s.idx.Unlock()
		return nil
	case OpMarkInvalid:
		return applyUpdate(m.ID, func(next, _ *QueryRecord) {
			next.Valid = false
			next.InvalidReason = m.Reason
		})
	case OpMarkValid:
		return applyUpdate(m.ID, func(next, _ *QueryRecord) {
			next.Valid = true
			next.InvalidReason = ""
		})
	case OpMarkStale:
		return applyUpdate(m.ID, func(next, _ *QueryRecord) {
			next.StatsStale = m.Stale
		})
	case OpUpdateStats:
		if m.Stats == nil {
			return fmt.Errorf("storage: apply %s: missing stats", m.Op)
		}
		return applyUpdate(m.ID, func(next, _ *QueryRecord) {
			next.Stats = *m.Stats
			next.StatsStale = false
		})
	case OpSetSample:
		return applyUpdate(m.ID, func(next, _ *QueryRecord) {
			next.Sample = m.Sample
		})
	case OpSetQuality:
		return applyUpdate(m.ID, func(next, _ *QueryRecord) {
			next.QualityScore = m.Score
		})
	case OpReplaceText:
		if m.Record == nil {
			return fmt.Errorf("storage: apply %s: missing record", m.Op)
		}
		rec, err := s.lookup(m.ID)
		if err != nil {
			return err
		}
		m.prev, m.next = rec, s.replaceText(rec, m.Record)
		return nil
	default:
		return fmt.Errorf("storage: apply: unknown op %q", m.Op)
	}
}

// lookup returns the current version of a record. Callers must hold the
// commit lock (mutation paths use it to read-modify-write).
func (s *Store) lookup(id QueryID) (*QueryRecord, error) {
	rec, ok := s.loadRecord(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	return rec, nil
}

// update performs one copy-on-write field mutation: it shallow-copies the
// current record version, lets mutate replace the fields it changes, and
// publishes the copy. It returns the versions before and after the update.
// Callers must hold the commit lock.
func (s *Store) update(id QueryID, mutate func(next, old *QueryRecord)) (old, next *QueryRecord, err error) {
	rec, err := s.lookup(id)
	if err != nil {
		return nil, nil, err
	}
	next = rec.shallowCopy()
	mutate(next, rec)
	s.storeRecord(next)
	return rec, next, nil
}

// insert places a record with an already-assigned ID into its shard and all
// inverted indexes. It is shared by the live Put path and WAL replay; replay
// of a Put whose ID already exists (a snapshot/segment overlap) replaces the
// older copy so recovery stays idempotent — the replaced version, if any, is
// returned so bus subscribers can retract its contributions. The record
// becomes visible to scans only once its ID is published to the insertion
// order, which happens after the shard holds the record. Callers must hold
// the commit lock.
func (s *Store) insert(rec *QueryRecord) (replaced *QueryRecord) {
	rec.prepare()
	return s.insertPrepared(rec, computeIndexKeys(rec))
}

// insertPrepared is insert for the live write paths: the record is already
// prepared and its index keys precomputed outside the commit lock, so the
// critical section pays only the map inserts. Callers must hold the commit
// lock.
func (s *Store) insertPrepared(rec *QueryRecord, keys indexKeys) (replaced *QueryRecord) {
	if old, ok := s.loadRecord(rec.ID); ok {
		s.remove(old)
		replaced = old
	}
	s.storeRecord(rec)
	s.count.Add(1)
	s.idx.Lock()
	s.idx.order = append(s.idx.order, rec.ID)
	s.indexPreparedLocked(rec, keys)
	s.idx.Unlock()
	if int64(rec.ID) > s.nextID.Load() {
		s.nextID.Store(int64(rec.ID))
	}
	return replaced
}

// remove deletes a record from the indexes, the edge relation and its shard.
// The ID disappears from the insertion order first, so a scan that still
// resolves the record observes its last committed version. Callers must hold
// the commit lock.
func (s *Store) remove(rec *QueryRecord) {
	s.idx.Lock()
	order := make([]QueryID, 0, len(s.idx.order)-1)
	for _, qid := range s.idx.order {
		if qid != rec.ID {
			order = append(order, qid)
		}
	}
	s.idx.order = order
	s.removeFromIndexesLocked(rec)
	s.removeEdgesLocked(rec)
	s.idx.Unlock()
	s.deleteRecord(rec.ID)
	s.count.Add(-1)
}

// reassignSession moves a record between session index buckets and publishes
// an updated record version, which it returns. Callers must hold the commit
// lock.
func (s *Store) reassignSession(rec *QueryRecord, sessionID int64) *QueryRecord {
	next := rec.shallowCopy()
	next.SessionID = sessionID
	s.storeRecord(next)
	s.idx.Lock()
	if rec.SessionID != 0 {
		removeFromBucket(s.idx.bySession, rec.SessionID, rec.ID)
	}
	if sessionID != 0 {
		insertIntoBucket(s.idx.bySession, sessionID, rec.ID)
	}
	s.idx.Unlock()
	return next
}

// replaceText publishes a record version with the text and feature relations
// of the update, re-indexing it, and returns the new version. The record's
// session edges survive: a text repair does not unlink the query from its
// session history. De-indexing and re-indexing happen in one idx critical
// section so an indexed scan never misses the record mid-replacement.
// Callers must hold the commit lock.
func (s *Store) replaceText(rec, updated *QueryRecord) *QueryRecord {
	next := rec.shallowCopy()
	next.Text = updated.Text
	next.Canonical = updated.Canonical
	next.Template = updated.Template
	next.Fingerprint = updated.Fingerprint
	next.ExactHash = updated.ExactHash
	next.Tables = updated.Tables
	next.Attributes = updated.Attributes
	next.Predicates = updated.Predicates
	next.Aggregates = updated.Aggregates
	next.GroupBy = updated.GroupBy
	next.Features = updated.Features
	next.prepare()
	s.storeRecord(next)
	s.idx.Lock()
	s.removeFromIndexesLocked(rec)
	s.indexLocked(next)
	s.idx.Unlock()
	return next
}
