package storage

import (
	"fmt"
	"strings"

	"repro/internal/sql"
)

// FeatureParseError is the feature-set class assigned to raw-captured
// records whose text failed to parse. It keeps unparsable statements
// findable (keyword search still works on raw text) and groups them under
// one fingerprint class in the stats and mining surfaces.
const FeatureParseError = "parse_error"

// NewRecordFromSQL parses the query text, extracts its syntactic features and
// returns a QueryRecord ready for Store.Put. Runtime statistics, samples,
// user identity and visibility are filled in by the caller (normally the
// Query Profiler).
func NewRecordFromSQL(text string) (*QueryRecord, error) {
	stmt, err := sql.Parse(text)
	if err != nil {
		return nil, fmt.Errorf("storage: parsing query: %w", err)
	}
	rec := &QueryRecord{
		Text:        text,
		Canonical:   stmt.SQL(),
		Template:    sql.Template(stmt),
		Fingerprint: sql.Fingerprint(text),
		ExactHash:   sql.ExactFingerprint(text),
		Valid:       true,
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return rec, nil
	}
	a := sql.Analyze(sel)
	rec.Tables = append([]string(nil), a.Tables...)
	for _, c := range a.Columns {
		rec.Attributes = append(rec.Attributes, AttributeRow{Attr: c.Column, Rel: c.Table, Clause: c.Clause})
	}
	for _, p := range a.Predicates {
		rec.Predicates = append(rec.Predicates, PredicateRow{
			Attr: p.Column, Rel: p.Table, Op: p.Op, Const: p.Value,
			IsJoin: p.IsJoin, RightRel: p.RightTab, RightAttr: p.RightCol,
		})
	}
	rec.Aggregates = append([]string(nil), a.Aggregates...)
	rec.GroupBy = append([]string(nil), a.GroupByColumns...)
	rec.Features = a.FeatureSet()
	return rec, nil
}

// NewRawRecord builds a QueryRecord for text that failed to parse: the raw
// text is preserved, the canonical form falls back to whitespace-collapsed
// upper-casing, the template and fingerprint use the lexer-level constant
// mask (sql.TemplateText's parse-free fallback), and the record is marked
// invalid with the parse error as its reason. Its feature set carries the
// FeatureParseError class so the statement is still captured — the paper's
// premise is that the log is collected as a side effect of use, and a
// statement our SQL subset cannot parse is still real workload worth
// logging — without polluting the structured feature relations.
func NewRawRecord(text string, parseErr error) *QueryRecord {
	rec := &QueryRecord{
		Text:        text,
		Canonical:   strings.ToUpper(strings.Join(strings.Fields(text), " ")),
		Template:    sql.TemplateText(text),
		Fingerprint: sql.Fingerprint(text),
		ExactHash:   sql.ExactFingerprint(text),
		Valid:       false,
		Features:    []string{FeatureParseError},
	}
	if parseErr != nil {
		rec.InvalidReason = "parse error: " + parseErr.Error()
	} else {
		rec.InvalidReason = "parse error"
	}
	return rec
}

// Analysis reconstructs a sql.Analysis from the stored feature rows, so that
// components which operate on analyses (diffing, similarity) do not need to
// re-parse the query text.
func (q *QueryRecord) Analysis() *sql.Analysis {
	a := &sql.Analysis{Aliases: map[string]string{}}
	a.Tables = append([]string(nil), q.Tables...)
	for _, attr := range q.Attributes {
		a.Columns = append(a.Columns, sql.ColumnUse{Table: attr.Rel, Column: attr.Attr, Clause: attr.Clause})
	}
	for _, p := range q.Predicates {
		a.Predicates = append(a.Predicates, sql.PredicateFeature{
			Table: p.Rel, Column: p.Attr, Op: p.Op, Value: p.Const,
			IsJoin: p.IsJoin, RightTab: p.RightRel, RightCol: p.RightAttr,
		})
	}
	a.Aggregates = append([]string(nil), q.Aggregates...)
	a.GroupByColumns = append([]string(nil), q.GroupBy...)
	return a
}
