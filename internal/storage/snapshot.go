package storage

import "time"

// StoreState is the full serialisable state of a Store: every record in
// insertion order, the session edge relation and the ID counter. It is what
// the WAL subsystem writes as a snapshot and what recovery loads before
// replaying the log tail; the shard placement and inverted indexes are
// derived state and are rebuilt on restore.
type StoreState struct {
	NextID  QueryID        `json:"nextId"`
	Records []*QueryRecord `json:"records"`
	Edges   []SessionEdge  `json:"edges,omitempty"`
}

// State returns a deep copy of the store's state.
func (s *Store) State() *StoreState {
	return s.StateWith(nil)
}

// SubscriberCheckpoint is one bus subscriber's serialized derived state,
// captured atomically with a StoreState and carried as a snapshot sidecar
// section so recovery can restore the subscriber instead of rebuilding it.
type SubscriberCheckpoint struct {
	Name    string
	Version int
	Data    []byte
}

// StateWith returns a deep copy of the store's state and, while still holding
// the commit lock, invokes capture. The WAL manager uses capture to record
// the last appended log sequence atomically with the snapshot contents:
// because the mutation hook runs under the commit lock, no mutation can slip
// between the captured sequence and the copied state.
func (s *Store) StateWith(capture func()) *StoreState {
	st, _ := s.stateWith(capture, false)
	return st
}

// StateWithCheckpoints is StateWith plus, in the same commit-lock critical
// section, one checkpoint per bus subscriber that offers one — so the
// derived-state checkpoints describe exactly the records in the returned
// state. A subscriber whose Checkpoint fails is omitted (recovery rebuilds
// it instead).
func (s *Store) StateWithCheckpoints(capture func()) (*StoreState, []SubscriberCheckpoint) {
	return s.stateWith(capture, true)
}

func (s *Store) stateWith(capture func(), checkpoints bool) (*StoreState, []SubscriberCheckpoint) {
	s.lockCommit()
	defer s.unlockCommit()
	if met := s.metrics; met != nil {
		start := time.Now()
		defer func() { met.capture.Observe(time.Since(start)) }()
	}
	if capture != nil {
		capture()
	}
	var cps []SubscriberCheckpoint
	if checkpoints {
		for _, sub := range s.subs {
			if sub.checkpoint == nil {
				continue
			}
			version, data, err := sub.checkpoint()
			if err != nil {
				continue
			}
			cps = append(cps, SubscriberCheckpoint{Name: sub.name, Version: version, Data: data})
		}
	}
	s.idx.RLock()
	order := s.idx.order
	edges := append([]SessionEdge(nil), s.idx.edges...)
	s.idx.RUnlock()
	st := &StoreState{
		NextID:  QueryID(s.nextID.Load()),
		Records: make([]*QueryRecord, 0, len(order)),
		Edges:   edges,
	}
	for _, id := range order {
		if rec, ok := s.loadRecord(id); ok {
			st.Records = append(st.Records, rec.Clone())
		}
	}
	return st, cps
}

// RestoreState replaces the store's entire contents with the snapshot,
// rebuilding the shard placement and every inverted index through the same
// insert path used by live operations and replay. The WAL slot of the
// mutation bus is not invoked; derived-state subscribers get their Reset
// hook once the restore completes, since a snapshot load has no per-record
// mutation stream to fan out. RestoreState takes ownership of st and its
// records — recovery hands over a freshly decoded state, and cloning ~100k
// records a second time would double restart cost.
func (s *Store) RestoreState(st *StoreState) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.restoreStateLocked(st)
	s.notifyReset()
}

// RestoreStateWithCheckpoints replaces the store's contents with the
// snapshot, then brings every bus subscriber back: a subscriber whose named
// checkpoint is present, understood and restores cleanly skips the rebuild;
// every other subscriber gets its Reset hook (a full rebuild from the
// restored store). It returns the subscriber names that restored from a
// checkpoint and those that were rebuilt, for recovery provenance.
func (s *Store) RestoreStateWithCheckpoints(st *StoreState, cps []SubscriberCheckpoint) (restored, rebuilt []string) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.restoreStateLocked(st)
	byName := make(map[string]SubscriberCheckpoint, len(cps))
	for _, cp := range cps {
		byName[cp.Name] = cp
	}
	for _, sub := range s.subs {
		if cp, ok := byName[sub.name]; ok && sub.restore != nil {
			if err := sub.restore(cp.Version, cp.Data); err == nil {
				restored = append(restored, sub.name)
				continue
			}
		}
		if sub.reset != nil {
			sub.reset()
			rebuilt = append(rebuilt, sub.name)
		}
	}
	return restored, rebuilt
}

func (s *Store) restoreStateLocked(st *StoreState) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.recs = make(map[QueryID]*QueryRecord)
		sh.mu.Unlock()
	}
	s.count.Store(0)
	s.nextID.Store(0)
	s.edgeSet = make(map[SessionEdge]struct{}, len(st.Edges))
	s.idx.Lock()
	s.idx.order = nil
	s.idx.byTable = make(map[string][]QueryID)
	s.idx.byAttribute = make(map[string][]QueryID)
	s.idx.byUser = make(map[string][]QueryID)
	s.idx.byFingerprint = make(map[uint64][]QueryID)
	s.idx.bySession = make(map[int64][]QueryID)
	s.idx.tableNames = make(map[string]map[string]int)
	s.idx.edges = append([]SessionEdge(nil), st.Edges...)
	s.idx.edgesFrom = make(map[QueryID][]SessionEdge)
	for _, e := range st.Edges {
		s.edgeSet[e] = struct{}{}
		s.idx.edgesFrom[e.From] = append(s.idx.edgesFrom[e.From], e)
	}
	s.idx.Unlock()
	for _, rec := range st.Records {
		s.insert(rec)
	}
	if int64(st.NextID) > s.nextID.Load() {
		s.nextID.Store(int64(st.NextID))
	}
}
