package storage

// StoreState is the full serialisable state of a Store: every record in
// insertion order, the session edge relation and the ID counter. It is what
// the WAL subsystem writes as a snapshot and what recovery loads before
// replaying the log tail; the inverted indexes are derived state and are
// rebuilt on restore.
type StoreState struct {
	NextID  QueryID        `json:"nextId"`
	Records []*QueryRecord `json:"records"`
	Edges   []SessionEdge  `json:"edges,omitempty"`
}

// State returns a deep copy of the store's state.
func (s *Store) State() *StoreState {
	return s.StateWith(nil)
}

// StateWith returns a deep copy of the store's state and, while still holding
// the lock, invokes capture. The WAL manager uses capture to record the last
// appended log sequence atomically with the snapshot contents: because the
// mutation hook runs under the write lock, no mutation can slip between the
// captured sequence and the copied state.
func (s *Store) StateWith(capture func()) *StoreState {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if capture != nil {
		capture()
	}
	st := &StoreState{
		NextID:  s.nextID,
		Records: make([]*QueryRecord, 0, len(s.order)),
		Edges:   append([]SessionEdge(nil), s.edges...),
	}
	for _, id := range s.order {
		st.Records = append(st.Records, s.queries[id].Clone())
	}
	return st
}

// RestoreState replaces the store's entire contents with the snapshot,
// rebuilding every inverted index through the same insert path used by live
// operations and replay. The mutation hook is not invoked. RestoreState takes
// ownership of st and its records — recovery hands over a freshly decoded
// state, and cloning ~100k records a second time would double restart cost.
func (s *Store) RestoreState(st *StoreState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queries = make(map[QueryID]*QueryRecord, len(st.Records))
	s.order = s.order[:0]
	s.nextID = 0
	s.byTable = make(map[string][]QueryID)
	s.byAttribute = make(map[string][]QueryID)
	s.byUser = make(map[string][]QueryID)
	s.byFingerprint = make(map[uint64][]QueryID)
	s.bySession = make(map[int64][]QueryID)
	s.edges = append(s.edges[:0], st.Edges...)
	s.edgeSet = make(map[SessionEdge]struct{}, len(st.Edges))
	for _, e := range st.Edges {
		s.edgeSet[e] = struct{}{}
	}
	for _, rec := range st.Records {
		s.insert(rec)
	}
	if st.NextID > s.nextID {
		s.nextID = st.NextID
	}
}
