package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Sentinel errors.
var (
	// ErrNotFound is returned when a query ID does not exist.
	ErrNotFound = errors.New("storage: query not found")
	// ErrAccessDenied is returned when the principal may not see or modify a
	// query.
	ErrAccessDenied = errors.New("storage: access denied")
)

// Store is the Query Storage component. It is safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	queries map[QueryID]*QueryRecord
	order   []QueryID
	nextID  QueryID

	// Inverted indexes for interactive meta-querying.
	byTable       map[string][]QueryID // lower-cased table name
	byAttribute   map[string][]QueryID // lower-cased "rel.attr"
	byUser        map[string][]QueryID
	byFingerprint map[uint64][]QueryID
	bySession     map[int64][]QueryID

	edges []SessionEdge
	// edgeSet mirrors edges for O(1) duplicate checks: the session detector
	// re-derives the same edges on every mining pass.
	edgeSet map[SessionEdge]struct{}

	// hook observes every successful mutation (see SetMutationHook); the WAL
	// manager uses it to append mutations to the durable log.
	hook MutationHook

	now func() time.Time
}

// NewStore returns an empty query store.
func NewStore() *Store {
	return &Store{
		queries:       make(map[QueryID]*QueryRecord),
		byTable:       make(map[string][]QueryID),
		byAttribute:   make(map[string][]QueryID),
		byUser:        make(map[string][]QueryID),
		byFingerprint: make(map[uint64][]QueryID),
		bySession:     make(map[int64][]QueryID),
		edgeSet:       make(map[SessionEdge]struct{}),
		now:           time.Now,
	}
}

// SetClock overrides the store's time source (used by tests and the workload
// generator).
func (s *Store) SetClock(now func() time.Time) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.now = now
}

// Put inserts a record and assigns it an ID. The record's IssuedAt is set to
// the current time if zero. Put returns the assigned ID.
func (s *Store) Put(rec *QueryRecord) QueryID {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	rec.ID = s.nextID
	if rec.IssuedAt.IsZero() {
		rec.IssuedAt = s.now()
	}
	rec.Valid = true
	s.insert(rec)
	if s.hook != nil {
		// The clone is only needed for the hook; the default in-memory path
		// skips it on this hot write path.
		s.emit(&Mutation{Op: OpPut, Record: rec.Clone()})
	}
	return rec.ID
}

func (s *Store) index(rec *QueryRecord) {
	for _, t := range rec.Tables {
		key := strings.ToLower(t)
		s.byTable[key] = append(s.byTable[key], rec.ID)
	}
	seenAttr := make(map[string]bool)
	for _, a := range rec.Attributes {
		key := strings.ToLower(a.Rel + "." + a.Attr)
		if seenAttr[key] {
			continue
		}
		seenAttr[key] = true
		s.byAttribute[key] = append(s.byAttribute[key], rec.ID)
	}
	s.byUser[rec.User] = append(s.byUser[rec.User], rec.ID)
	s.byFingerprint[rec.Fingerprint] = append(s.byFingerprint[rec.Fingerprint], rec.ID)
	if rec.SessionID != 0 {
		s.bySession[rec.SessionID] = append(s.bySession[rec.SessionID], rec.ID)
	}
}

// Get returns a copy of the record with the given ID, enforcing visibility
// for the principal.
func (s *Store) Get(id QueryID, p Principal) (*QueryRecord, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec, ok := s.queries[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	if !rec.VisibleTo(p) {
		return nil, fmt.Errorf("%w: query %d", ErrAccessDenied, id)
	}
	return rec.Clone(), nil
}

// Count returns the total number of stored queries (regardless of
// visibility).
func (s *Store) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.queries)
}

// All returns copies of every record visible to the principal, in insertion
// (temporal) order.
func (s *Store) All(p Principal) []*QueryRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*QueryRecord, 0, len(s.order))
	for _, id := range s.order {
		rec := s.queries[id]
		if rec.VisibleTo(p) {
			out = append(out, rec.Clone())
		}
	}
	return out
}

// ByUser returns the queries submitted by the given user that are visible to
// the principal, in temporal order.
func (s *Store) ByUser(user string, p Principal) []*QueryRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := s.byUser[user]
	out := make([]*QueryRecord, 0, len(ids))
	for _, id := range ids {
		rec := s.queries[id]
		if rec.VisibleTo(p) {
			out = append(out, rec.Clone())
		}
	}
	return out
}

// ByTable returns visible queries whose FROM clause references the table.
func (s *Store) ByTable(table string, p Principal) []*QueryRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cloneVisible(s.byTable[strings.ToLower(table)], p)
}

// ByAttribute returns visible queries that reference relName.attrName.
func (s *Store) ByAttribute(rel, attr string, p Principal) []*QueryRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cloneVisible(s.byAttribute[strings.ToLower(rel+"."+attr)], p)
}

// ByFingerprint returns visible queries with the given template fingerprint.
func (s *Store) ByFingerprint(fp uint64, p Principal) []*QueryRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cloneVisible(s.byFingerprint[fp], p)
}

// BySession returns the visible queries of one session in temporal order.
func (s *Store) BySession(sessionID int64, p Principal) []*QueryRecord {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := append([]QueryID(nil), s.bySession[sessionID]...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return s.cloneVisible(ids, p)
}

// SessionIDs returns all session identifiers present in the store, sorted.
func (s *Store) SessionIDs() []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int64, 0, len(s.bySession))
	for id := range s.bySession {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (s *Store) cloneVisible(ids []QueryID, p Principal) []*QueryRecord {
	out := make([]*QueryRecord, 0, len(ids))
	for _, id := range ids {
		rec, ok := s.queries[id]
		if ok && rec.VisibleTo(p) {
			out = append(out, rec.Clone())
		}
	}
	return out
}

// Users returns the distinct users that have logged queries, sorted.
func (s *Store) Users() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.byUser))
	for u := range s.byUser {
		out = append(out, u)
	}
	sort.Strings(out)
	return out
}

// Tables returns the distinct table names referenced across all logged
// queries along with how many queries reference each, sorted by descending
// count then name. The recommender uses these as global popularity priors.
type TableCount struct {
	Table string
	Count int
}

// TableCounts returns per-table reference counts.
func (s *Store) TableCounts() []TableCount {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]TableCount, 0, len(s.byTable))
	nameOf := make(map[string]string)
	for _, rec := range s.queries {
		for _, t := range rec.Tables {
			nameOf[strings.ToLower(t)] = t
		}
	}
	for key, ids := range s.byTable {
		name := nameOf[key]
		if name == "" {
			name = key
		}
		out = append(out, TableCount{Table: name, Count: len(ids)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Table < out[j].Table
	})
	return out
}

// ---------------------------------------------------------------------------
// Mutations: annotations, sessions, maintenance state, deletion
// ---------------------------------------------------------------------------

// Annotate appends an annotation to the query. Only the owner, a member of
// the owning group, or an admin may annotate.
func (s *Store) Annotate(id QueryID, p Principal, ann Annotation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.queries[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	if !rec.VisibleTo(p) {
		return fmt.Errorf("%w: query %d", ErrAccessDenied, id)
	}
	if ann.At.IsZero() {
		ann.At = s.now()
	}
	if ann.Author == "" {
		ann.Author = p.User
	}
	m := &Mutation{Op: OpAnnotate, ID: id, Annotation: &ann}
	if err := s.applyLocked(m); err != nil {
		return err
	}
	s.emit(m)
	return nil
}

// SetVisibility changes who can see the query. Only the owner or an admin
// may change visibility (User Administrative Interaction Mode).
func (s *Store) SetVisibility(id QueryID, p Principal, v Visibility) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.queries[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	if rec.User != p.User && !p.Admin {
		return fmt.Errorf("%w: only the owner may change visibility of query %d", ErrAccessDenied, id)
	}
	m := &Mutation{Op: OpSetVisibility, ID: id, Visibility: v}
	if err := s.applyLocked(m); err != nil {
		return err
	}
	s.emit(m)
	return nil
}

// Delete removes a query from the store. Only the owner or an admin may
// delete (§2.4 "Users will need the ability to delete old queries").
func (s *Store) Delete(id QueryID, p Principal) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, ok := s.queries[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	if rec.User != p.User && !p.Admin {
		return fmt.Errorf("%w: only the owner may delete query %d", ErrAccessDenied, id)
	}
	m := &Mutation{Op: OpDelete, ID: id}
	if err := s.applyLocked(m); err != nil {
		return err
	}
	s.emit(m)
	return nil
}

func (s *Store) removeFromIndexes(rec *QueryRecord) {
	removeID := func(list []QueryID, id QueryID) []QueryID {
		out := list[:0]
		for _, x := range list {
			if x != id {
				out = append(out, x)
			}
		}
		return out
	}
	for _, t := range rec.Tables {
		key := strings.ToLower(t)
		s.byTable[key] = removeID(s.byTable[key], rec.ID)
	}
	for _, a := range rec.Attributes {
		key := strings.ToLower(a.Rel + "." + a.Attr)
		s.byAttribute[key] = removeID(s.byAttribute[key], rec.ID)
	}
	s.byUser[rec.User] = removeID(s.byUser[rec.User], rec.ID)
	s.byFingerprint[rec.Fingerprint] = removeID(s.byFingerprint[rec.Fingerprint], rec.ID)
	if rec.SessionID != 0 {
		s.bySession[rec.SessionID] = removeID(s.bySession[rec.SessionID], rec.ID)
	}
	kept := s.edges[:0]
	for _, e := range s.edges {
		if e.From != rec.ID && e.To != rec.ID {
			kept = append(kept, e)
		} else {
			delete(s.edgeSet, e)
		}
	}
	s.edges = kept
}

// AssignSession records the session a query belongs to (set by the miner's
// session detector). Re-assigning the same session is a no-op so the periodic
// mining pass does not flood the mutation log.
func (s *Store) AssignSession(id QueryID, sessionID int64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec, err := s.lookup(id)
	if err != nil {
		return err
	}
	if rec.SessionID == sessionID {
		return nil
	}
	m := &Mutation{Op: OpAssignSession, ID: id, SessionID: sessionID}
	if err := s.applyLocked(m); err != nil {
		return err
	}
	s.emit(m)
	return nil
}

// AddEdge records a session edge between two logged queries. An edge that
// already exists is a no-op: the session detector re-derives the full edge
// set on every mining pass.
func (s *Store) AddEdge(edge SessionEdge) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.edgeSet[edge]; dup {
		return nil
	}
	m := &Mutation{Op: OpAddEdge, Edge: &edge}
	if err := s.applyLocked(m); err != nil {
		return err
	}
	s.emit(m)
	return nil
}

// Edges returns a copy of the session edge relation.
func (s *Store) Edges() []SessionEdge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]SessionEdge(nil), s.edges...)
}

// EdgesFrom returns the edges leaving the given query.
func (s *Store) EdgesFrom(id QueryID) []SessionEdge {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []SessionEdge
	for _, e := range s.edges {
		if e.From == id {
			out = append(out, e)
		}
	}
	return out
}

// MarkInvalid flags a query as invalidated (e.g. by a schema change) with a
// reason. Used by the Query Maintenance component.
func (s *Store) MarkInvalid(id QueryID, reason string) error {
	return s.mutate(&Mutation{Op: OpMarkInvalid, ID: id, Reason: reason})
}

// MarkValid clears the invalid flag (after a successful automatic repair).
func (s *Store) MarkValid(id QueryID) error {
	return s.mutate(&Mutation{Op: OpMarkValid, ID: id})
}

// MarkStatsStale flags the runtime statistics of a query as outdated.
func (s *Store) MarkStatsStale(id QueryID, stale bool) error {
	return s.mutate(&Mutation{Op: OpMarkStale, ID: id, Stale: stale})
}

// UpdateStats replaces a query's runtime statistics (e.g. after the
// maintenance component re-executes it) and clears the stale flag.
func (s *Store) UpdateStats(id QueryID, stats RuntimeStats) error {
	return s.mutate(&Mutation{Op: OpUpdateStats, ID: id, Stats: &stats})
}

// SetSample replaces a query's stored output sample, used when the
// maintenance component re-executes a query to refresh its statistics.
func (s *Store) SetSample(id QueryID, sample *OutputSample) error {
	return s.mutate(&Mutation{Op: OpSetSample, ID: id, Sample: sample})
}

// SetQuality records a quality score for the query (§4.4).
func (s *Store) SetQuality(id QueryID, score float64) error {
	return s.mutate(&Mutation{Op: OpSetQuality, ID: id, Score: score})
}

// ReplaceText rewrites the query text and canonical forms, used by the
// maintenance component's automatic repair. Features must be re-extracted by
// the caller and passed in.
func (s *Store) ReplaceText(id QueryID, updated *QueryRecord) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := updated
	if s.hook != nil {
		// The mutation outlives this call in the hook; don't alias the
		// caller's record there.
		rec = updated.Clone()
	}
	m := &Mutation{Op: OpReplaceText, ID: id, Record: rec}
	if err := s.applyLocked(m); err != nil {
		return err
	}
	s.emit(m)
	return nil
}

// mutate applies a mutation under the write lock and emits it on success.
func (s *Store) mutate(m *Mutation) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.applyLocked(m); err != nil {
		return err
	}
	s.emit(m)
	return nil
}

// InvalidQueries returns the IDs of all queries currently flagged invalid.
func (s *Store) InvalidQueries() []QueryID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []QueryID
	for _, id := range s.order {
		if !s.queries[id].Valid {
			out = append(out, id)
		}
	}
	return out
}

// StaleQueries returns the IDs of all queries whose statistics are stale.
func (s *Store) StaleQueries() []QueryID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []QueryID
	for _, id := range s.order {
		if s.queries[id].StatsStale {
			out = append(out, id)
		}
	}
	return out
}
