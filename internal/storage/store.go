package storage

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Sentinel errors.
var (
	// ErrNotFound is returned when a query ID does not exist.
	ErrNotFound = errors.New("storage: query not found")
	// ErrAccessDenied is returned when the principal may not see or modify a
	// query.
	ErrAccessDenied = errors.New("storage: access denied")
	// ErrReadOnly is returned by live mutating operations while the store is
	// in read-only (replica) mode. Apply — the replication/recovery replay
	// entry point — is exempt: it is how a read-only store advances.
	ErrReadOnly = errors.New("storage: store is read-only")
)

const (
	shardBits = 5
	// shardCount is the number of lock stripes the record map is spread
	// over. Concurrent readers and writers on different records only contend
	// when their QueryIDs hash to the same stripe.
	shardCount = 1 << shardBits
)

// shard is one lock stripe of the record map. Records inside a shard are
// immutable: every mutation replaces the record pointer with an updated copy
// (copy-on-write), so a reader holding a record can never observe a
// half-applied mutation and scans never need defensive deep copies.
type shard struct {
	mu   sync.RWMutex
	recs map[QueryID]*QueryRecord
}

// Store is the Query Storage component. It is safe for concurrent use.
//
// Concurrency design: records live in lock-striped shards (hashed by
// QueryID) and are immutable once stored. Writers serialise on commitMu,
// mutate by swapping one record pointer inside one shard and updating the
// derived indexes; readers take a Snapshot and iterate without cloning, so
// read throughput scales with cores instead of serialising on one store-wide
// mutex while deep-copying the log.
type Store struct {
	// commitMu serialises every mutation (live operations and WAL replay).
	// It establishes the total mutation order the event bus fans out, and
	// lets StateWith capture a snapshot no mutation can slip into. Readers
	// never take it.
	commitMu sync.Mutex
	// hook is the bus's WAL slot (SetMutationHook): notified first, live
	// mutations only. subs are the derived-state subscribers (Subscribe):
	// notified after it, for live and replayed mutations alike. All guarded
	// by commitMu.
	hook      MutationHook
	subs      []busSubscriber
	nextSubID int
	now       func() time.Time // guarded by commitMu

	// durable is the bus's durability-wait slot (SetDurabilityWaiter):
	// mutating methods call it with their highest WAL sequence after
	// releasing commitMu, so one batch's fsync wait never blocks the next
	// batch from sequencing. Guarded by commitMu.
	durable func(seq uint64)

	// metrics, when non-nil, holds the store's instruments (EnableMetrics).
	// commitLockedAt is the commit-lock acquisition stamp lockCommit records
	// so unlockCommit can observe the hold time. Both guarded by commitMu.
	metrics        *storeMetrics
	commitLockedAt time.Time

	// nextID is the ID high-water mark. Written only under commitMu; read
	// atomically by Snapshot, which uses it to exclude records inserted
	// after the snapshot from indexed scans.
	nextID atomic.Int64

	// edgeSet mirrors the edge relation for O(1) duplicate checks; only
	// mutation paths touch it, so commitMu guards it.
	edgeSet map[SessionEdge]struct{}

	count atomic.Int64

	// readOnly, when set, makes every live mutating method refuse with
	// ErrReadOnly. The replay path (Apply, RestoreState*) keeps working: a
	// follower's store only advances by replaying the primary's mutations.
	readOnly atomic.Bool

	shards [shardCount]shard

	// idx guards the derived read structures: insertion order, the inverted
	// indexes and the session edge relation. Every slice reachable from idx
	// is copy-on-write: writers append in place (readers only look at
	// indexes below their captured length) and build a fresh slice on
	// removal, so a reader may capture a slice header under RLock and keep
	// iterating it after releasing the lock.
	idx struct {
		sync.RWMutex
		order         []QueryID
		byTable       map[string][]QueryID // lower-cased table name
		byAttribute   map[string][]QueryID // lower-cased "rel.attr"
		byUser        map[string][]QueryID
		byFingerprint map[uint64][]QueryID
		bySession     map[int64][]QueryID

		// tableNames counts the live display casings per lower-cased table
		// key, so TableCounts can report a real name without scanning the
		// log for one.
		tableNames map[string]map[string]int

		edges []SessionEdge
		// edgesFrom indexes the edge relation by source query so EdgesFrom
		// is O(degree) instead of O(E).
		edgesFrom map[QueryID][]SessionEdge
	}
}

// NewStore returns an empty query store.
func NewStore() *Store {
	s := &Store{
		edgeSet: make(map[SessionEdge]struct{}),
		now:     time.Now,
	}
	for i := range s.shards {
		s.shards[i].recs = make(map[QueryID]*QueryRecord)
	}
	s.idx.byTable = make(map[string][]QueryID)
	s.idx.byAttribute = make(map[string][]QueryID)
	s.idx.byUser = make(map[string][]QueryID)
	s.idx.byFingerprint = make(map[uint64][]QueryID)
	s.idx.bySession = make(map[int64][]QueryID)
	s.idx.tableNames = make(map[string]map[string]int)
	s.idx.edgesFrom = make(map[QueryID][]SessionEdge)
	return s
}

// shardIndex maps a query ID onto the index of its lock stripe.
func shardIndex(id QueryID) int {
	return int((uint64(id) * 0x9e3779b97f4a7c15) >> (64 - shardBits))
}

// shardFor maps a query ID onto its lock stripe.
func (s *Store) shardFor(id QueryID) *shard {
	return &s.shards[shardIndex(id)]
}

// loadRecord returns the current immutable version of a record.
func (s *Store) loadRecord(id QueryID) (*QueryRecord, bool) {
	sh := s.shardFor(id)
	sh.mu.RLock()
	rec, ok := sh.recs[id]
	sh.mu.RUnlock()
	return rec, ok
}

// storeRecord publishes a (new or updated) immutable record version.
func (s *Store) storeRecord(rec *QueryRecord) {
	sh := s.shardFor(rec.ID)
	sh.mu.Lock()
	sh.recs[rec.ID] = rec
	sh.mu.Unlock()
}

// deleteRecord drops a record from its shard.
func (s *Store) deleteRecord(id QueryID) {
	sh := s.shardFor(id)
	sh.mu.Lock()
	delete(sh.recs, id)
	sh.mu.Unlock()
}

// SetClock overrides the store's time source (used by tests and the workload
// generator).
func (s *Store) SetClock(now func() time.Time) {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.now = now
}

// SetReadOnly toggles read-only (replica) mode. While set, live mutating
// methods refuse with ErrReadOnly; Apply and state restoration keep working
// so replication can advance the store.
func (s *Store) SetReadOnly(ro bool) { s.readOnly.Store(ro) }

// ReadOnly reports whether the store refuses live mutations.
func (s *Store) ReadOnly() bool { return s.readOnly.Load() }

// writable is the live-mutation gate: every mutating method that can report
// an error calls it before taking the commit lock. (Put and PutBatch have no
// error return; their callers gate on ReadOnly at the API layer.)
func (s *Store) writable() error {
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	return nil
}

// Put inserts a record and assigns it an ID. The record's IssuedAt is set to
// the current time if zero. Put returns the assigned ID. Put takes ownership
// of the record: the caller must not mutate it afterwards, because readers
// receive it without cloning.
func (s *Store) Put(rec *QueryRecord) QueryID {
	// Canonicalisation and index-key computation are pure per-record work;
	// doing them before taking the commit lock shrinks the critical section
	// to ID assignment, map inserts and the bus fan-out.
	rec.prepare()
	keys := computeIndexKeys(rec)
	s.lockCommit()
	rec.ID = QueryID(s.nextID.Load() + 1)
	if rec.IssuedAt.IsZero() {
		rec.IssuedAt = s.now()
	}
	// New records start valid unless the producer already marked them invalid
	// (raw-captured parse failures carry their reason in).
	rec.Valid = rec.InvalidReason == ""
	replaced := s.insertPrepared(rec, keys)
	var seq uint64
	if s.observed() {
		// Stored records are immutable, so the bus can reference the record
		// directly without a defensive clone. A replaced record (impossible
		// today — Put always assigns a fresh ID — but load-bearing should an
		// ID-preserving put path ever appear) rides along as prev so
		// subscribers retract its contributions.
		m := &Mutation{Op: OpPut, Record: rec, prev: replaced, next: rec}
		s.emit(m)
		seq = m.walSeq
	}
	id := rec.ID
	s.commitAndWait(seq)
	return id
}

// PutBatch inserts many records under a single commit-lock acquisition,
// assigning consecutive IDs in slice order. It is the amortised write path
// behind the batch-submit API: one lock round trip, one contiguous run of
// WAL hook emissions and one durability wait instead of one per query. Like
// Put, it takes ownership of every record.
func (s *Store) PutBatch(recs []*QueryRecord) []QueryID {
	if len(recs) == 0 {
		return nil
	}
	keys := make([]indexKeys, len(recs))
	for i, rec := range recs {
		rec.prepare()
		keys[i] = computeIndexKeys(rec)
	}
	ids := make([]QueryID, len(recs))
	s.lockCommit()
	// Consecutive fresh IDs above the high-water mark: no record in the
	// batch can replace an existing one, so the whole batch is published
	// with bulk shard stores and one idx critical section instead of a
	// lookup/insert round trip per record.
	base := s.nextID.Load()
	for i, rec := range recs {
		rec.ID = QueryID(base + int64(i) + 1)
		if rec.IssuedAt.IsZero() {
			rec.IssuedAt = s.now()
		}
		rec.Valid = rec.InvalidReason == ""
		ids[i] = rec.ID
	}
	s.storeRecordsBatch(recs)
	s.idx.Lock()
	for i, rec := range recs {
		s.idx.order = append(s.idx.order, rec.ID)
		s.indexPreparedLocked(rec, keys[i])
	}
	s.idx.Unlock()
	s.nextID.Store(base + int64(len(recs)))
	s.count.Add(int64(len(recs)))
	var seq uint64
	if s.observed() {
		for _, rec := range recs {
			m := &Mutation{Op: OpPut, Record: rec, next: rec}
			s.emit(m)
			if m.walSeq != 0 {
				seq = m.walSeq
			}
		}
	}
	s.commitAndWait(seq)
	return ids
}

// parallelStoreThreshold is the batch size at which PutBatch fans shard-map
// inserts out to worker goroutines; below it the goroutine handoff costs
// more than the handful of map writes it would parallelise.
const parallelStoreThreshold = 64

// storeRecordsBatch publishes a batch of fresh records to their shards:
// serially for small batches, one goroutine per touched shard for large
// ones. Scans cannot observe a partial batch either way — records become
// visible only when the insertion order is published, after this returns.
// Callers must hold the commit lock.
func (s *Store) storeRecordsBatch(recs []*QueryRecord) {
	if len(recs) < parallelStoreThreshold {
		for _, rec := range recs {
			s.storeRecord(rec)
		}
		return
	}
	var groups [shardCount][]*QueryRecord
	for _, rec := range recs {
		i := shardIndex(rec.ID)
		groups[i] = append(groups[i], rec)
	}
	var wg sync.WaitGroup
	for i := range groups {
		g := groups[i]
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(sh *shard, g []*QueryRecord) {
			defer wg.Done()
			sh.mu.Lock()
			for _, rec := range g {
				sh.recs[rec.ID] = rec
			}
			sh.mu.Unlock()
		}(&s.shards[i], g)
	}
	wg.Wait()
}

// insertIntoBucket adds an ID to a copy-on-write index bucket, preserving
// the ascending-ID invariant that the cursor scans (ScanAfter,
// ScanByUserAfter) binary-search on. Fresh inserts always carry the highest
// ID so the in-place append fast path applies; re-indexing an existing
// record (the ReplaceText repair path) rebuilds the bucket sorted, building
// a fresh slice like removal does so concurrent readers holding the old
// header stay consistent.
func insertIntoBucket[K comparable](m map[K][]QueryID, key K, id QueryID) {
	old := m[key]
	if n := len(old); n == 0 || old[n-1] < id {
		m[key] = append(old, id)
		return
	}
	i := sort.Search(len(old), func(i int) bool { return old[i] >= id })
	if i < len(old) && old[i] == id {
		return // already indexed
	}
	out := make([]QueryID, 0, len(old)+1)
	out = append(out, old[:i]...)
	out = append(out, id)
	out = append(out, old[i:]...)
	m[key] = out
}

// indexKeys holds the lower-cased inverted-index keys of one record,
// precomputed outside the commit lock so indexing under the lock is pure map
// work.
type indexKeys struct {
	tables []string // parallel to rec.Tables
	attrs  []string // deduplicated "rel.attr" keys
}

// computeIndexKeys derives a record's index keys. It is pure per-record
// work: live write paths call it before taking the commit lock.
func computeIndexKeys(rec *QueryRecord) indexKeys {
	var k indexKeys
	if len(rec.Tables) > 0 {
		k.tables = make([]string, len(rec.Tables))
		for i, t := range rec.Tables {
			k.tables[i] = strings.ToLower(t)
		}
	}
	if len(rec.Attributes) > 0 {
		k.attrs = make([]string, 0, len(rec.Attributes))
		for _, a := range rec.Attributes {
			key := strings.ToLower(a.Rel + "." + a.Attr)
			dup := false
			for _, seen := range k.attrs {
				if seen == key {
					dup = true
					break
				}
			}
			if !dup {
				k.attrs = append(k.attrs, key)
			}
		}
	}
	return k
}

// indexLocked adds a record to every inverted index. Callers must hold the
// idx write lock.
func (s *Store) indexLocked(rec *QueryRecord) {
	s.indexPreparedLocked(rec, computeIndexKeys(rec))
}

// indexPreparedLocked adds a record to every inverted index using keys
// computed by computeIndexKeys. Callers must hold the idx write lock.
func (s *Store) indexPreparedLocked(rec *QueryRecord, keys indexKeys) {
	for i, t := range rec.Tables {
		key := keys.tables[i]
		insertIntoBucket(s.idx.byTable, key, rec.ID)
		names := s.idx.tableNames[key]
		if names == nil {
			names = make(map[string]int, 1)
			s.idx.tableNames[key] = names
		}
		names[t]++
	}
	for _, key := range keys.attrs {
		insertIntoBucket(s.idx.byAttribute, key, rec.ID)
	}
	insertIntoBucket(s.idx.byUser, rec.User, rec.ID)
	insertIntoBucket(s.idx.byFingerprint, rec.Fingerprint, rec.ID)
	if rec.SessionID != 0 {
		insertIntoBucket(s.idx.bySession, rec.SessionID, rec.ID)
	}
}

// Get returns a copy of the record with the given ID, enforcing visibility
// for the principal. Use View.Get for the zero-clone variant.
func (s *Store) Get(id QueryID, p Principal) (*QueryRecord, error) {
	rec, ok := s.loadRecord(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	if !rec.VisibleTo(p) {
		return nil, fmt.Errorf("%w: query %d", ErrAccessDenied, id)
	}
	return rec.Clone(), nil
}

// Count returns the total number of stored queries (regardless of
// visibility).
func (s *Store) Count() int {
	return int(s.count.Load())
}

// All returns copies of every record visible to the principal, in insertion
// (temporal) order.
//
// Deprecated-for-hot-paths: All deep-copies every visible record. Scanning
// consumers should use Snapshot and the View iterator API instead; All
// remains as a compatibility wrapper for callers that want owned copies.
func (s *Store) All(p Principal) []*QueryRecord {
	var out []*QueryRecord
	s.Snapshot().Scan(p, func(rec *QueryRecord) bool {
		out = append(out, rec.Clone())
		return true
	})
	return out
}

// ByUser returns copies of the queries submitted by the given user that are
// visible to the principal, in temporal order. Compatibility wrapper over
// View.ScanByUser.
func (s *Store) ByUser(user string, p Principal) []*QueryRecord {
	var out []*QueryRecord
	s.Snapshot().ScanByUser(user, p, func(rec *QueryRecord) bool {
		out = append(out, rec.Clone())
		return true
	})
	return out
}

// ByTable returns copies of the visible queries whose FROM clause references
// the table. Compatibility wrapper over View.ScanByTable.
func (s *Store) ByTable(table string, p Principal) []*QueryRecord {
	var out []*QueryRecord
	s.Snapshot().ScanByTable(table, p, func(rec *QueryRecord) bool {
		out = append(out, rec.Clone())
		return true
	})
	return out
}

// ByAttribute returns copies of the visible queries that reference
// relName.attrName. Compatibility wrapper over View.ScanByAttribute.
func (s *Store) ByAttribute(rel, attr string, p Principal) []*QueryRecord {
	var out []*QueryRecord
	s.Snapshot().ScanByAttribute(rel, attr, p, func(rec *QueryRecord) bool {
		out = append(out, rec.Clone())
		return true
	})
	return out
}

// ByFingerprint returns copies of the visible queries with the given template
// fingerprint. Compatibility wrapper over View.ScanByFingerprint.
func (s *Store) ByFingerprint(fp uint64, p Principal) []*QueryRecord {
	var out []*QueryRecord
	s.Snapshot().ScanByFingerprint(fp, p, func(rec *QueryRecord) bool {
		out = append(out, rec.Clone())
		return true
	})
	return out
}

// BySession returns copies of the visible queries of one session in temporal
// order. Compatibility wrapper over View.ScanBySession.
func (s *Store) BySession(sessionID int64, p Principal) []*QueryRecord {
	var out []*QueryRecord
	s.Snapshot().ScanBySession(sessionID, p, func(rec *QueryRecord) bool {
		out = append(out, rec.Clone())
		return true
	})
	return out
}

// SessionIDs returns all session identifiers persisted on stored records
// (the mining pass writes them via AssignSession), sorted. This is the
// storage-layer view used to verify replay/restore equality in tests; the
// live session count — current without a mining pass — comes from the
// session detector, not from here.
func (s *Store) SessionIDs() []int64 {
	s.idx.RLock()
	out := make([]int64, 0, len(s.idx.bySession))
	for id := range s.idx.bySession {
		out = append(out, id)
	}
	s.idx.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Users returns the distinct users that have logged queries, sorted.
func (s *Store) Users() []string {
	s.idx.RLock()
	out := make([]string, 0, len(s.idx.byUser))
	for u := range s.idx.byUser {
		out = append(out, u)
	}
	s.idx.RUnlock()
	sort.Strings(out)
	return out
}

// TableCount pairs a table name with how many queries reference it. The
// recommender uses these as global popularity priors.
type TableCount struct {
	Table string
	Count int
}

// TableCounts returns per-table reference counts, sorted by descending count
// then name. It is served entirely from incrementally maintained counters —
// the index bucket sizes and the live display-casing counts — so its cost is
// O(distinct tables) regardless of log size.
func (s *Store) TableCounts() []TableCount {
	s.idx.RLock()
	out := make([]TableCount, 0, len(s.idx.byTable))
	for key, ids := range s.idx.byTable {
		out = append(out, TableCount{Table: s.displayNameLocked(key), Count: len(ids)})
	}
	s.idx.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Table < out[j].Table
	})
	return out
}

// displayNameLocked picks the display casing for a table key. Callers must
// hold the idx lock (read or write).
func (s *Store) displayNameLocked(key string) string {
	return PickDisplayName(s.idx.tableNames[key], key)
}

// PickDisplayName picks a deterministic display casing from live
// casing-reference counts: the casing with the most references, ties broken
// lexicographically, falling back when no casing is live. Shared by
// TableCounts and the stats subsystem so both report the same name.
func PickDisplayName(names map[string]int, fallback string) string {
	best, bestN := fallback, 0
	for name, n := range names {
		if n > bestN || (n == bestN && name < best) {
			best, bestN = name, n
		}
	}
	return best
}

// ---------------------------------------------------------------------------
// Mutations: annotations, sessions, maintenance state, deletion
// ---------------------------------------------------------------------------

// Annotate appends an annotation to the query. Only the owner, a member of
// the owning group, or an admin may annotate.
func (s *Store) Annotate(id QueryID, p Principal, ann Annotation) error {
	if err := s.writable(); err != nil {
		return err
	}
	s.lockCommit()
	rec, err := s.lookup(id)
	if err != nil {
		s.unlockCommit()
		return err
	}
	if !rec.VisibleTo(p) {
		s.unlockCommit()
		return fmt.Errorf("%w: query %d", ErrAccessDenied, id)
	}
	if ann.At.IsZero() {
		ann.At = s.now()
	}
	if ann.Author == "" {
		ann.Author = p.User
	}
	m := &Mutation{Op: OpAnnotate, ID: id, Annotation: &ann}
	if err := s.apply(m); err != nil {
		s.unlockCommit()
		return err
	}
	s.emit(m)
	s.commitAndWait(m.walSeq)
	return nil
}

// SetVisibility changes who can see the query. Only the owner or an admin
// may change visibility (User Administrative Interaction Mode).
func (s *Store) SetVisibility(id QueryID, p Principal, v Visibility) error {
	if err := s.writable(); err != nil {
		return err
	}
	s.lockCommit()
	rec, err := s.lookup(id)
	if err != nil {
		s.unlockCommit()
		return err
	}
	if rec.User != p.User && !p.Admin {
		s.unlockCommit()
		return fmt.Errorf("%w: only the owner may change visibility of query %d", ErrAccessDenied, id)
	}
	m := &Mutation{Op: OpSetVisibility, ID: id, Visibility: v}
	if err := s.apply(m); err != nil {
		s.unlockCommit()
		return err
	}
	s.emit(m)
	s.commitAndWait(m.walSeq)
	return nil
}

// Delete removes a query from the store. Only the owner or an admin may
// delete (§2.4 "Users will need the ability to delete old queries").
func (s *Store) Delete(id QueryID, p Principal) error {
	if err := s.writable(); err != nil {
		return err
	}
	s.lockCommit()
	rec, err := s.lookup(id)
	if err != nil {
		s.unlockCommit()
		return err
	}
	if rec.User != p.User && !p.Admin {
		s.unlockCommit()
		return fmt.Errorf("%w: only the owner may delete query %d", ErrAccessDenied, id)
	}
	m := &Mutation{Op: OpDelete, ID: id}
	if err := s.apply(m); err != nil {
		s.unlockCommit()
		return err
	}
	s.emit(m)
	s.commitAndWait(m.walSeq)
	return nil
}

// removeFromBucket removes one element from a copy-on-write index bucket and
// deletes the key once the bucket empties, so removals do not leak empty
// slices and stale map keys. A bucket not containing the element is left
// untouched.
func removeFromBucket[K, E comparable](m map[K][]E, key K, elem E) {
	old := m[key]
	found := false
	for _, x := range old {
		if x == elem {
			found = true
			break
		}
	}
	if !found {
		return
	}
	if len(old) == 1 {
		delete(m, key)
		return
	}
	out := make([]E, 0, len(old)-1)
	for _, x := range old {
		if x != elem {
			out = append(out, x)
		}
	}
	m[key] = out
}

// removeFromIndexesLocked strips a record from every inverted index. Callers
// must hold commitMu and the idx write lock.
func (s *Store) removeFromIndexesLocked(rec *QueryRecord) {
	for _, t := range rec.Tables {
		key := strings.ToLower(t)
		removeFromBucket(s.idx.byTable, key, rec.ID)
		if names := s.idx.tableNames[key]; names != nil {
			if names[t] <= 1 {
				delete(names, t)
				if len(names) == 0 {
					delete(s.idx.tableNames, key)
				}
			} else {
				names[t]--
			}
		}
	}
	for _, a := range rec.Attributes {
		removeFromBucket(s.idx.byAttribute, strings.ToLower(a.Rel+"."+a.Attr), rec.ID)
	}
	removeFromBucket(s.idx.byUser, rec.User, rec.ID)
	removeFromBucket(s.idx.byFingerprint, rec.Fingerprint, rec.ID)
	if rec.SessionID != 0 {
		removeFromBucket(s.idx.bySession, rec.SessionID, rec.ID)
	}
}

// removeEdgesLocked drops every session edge touching the record, from the
// edge relation, the duplicate set and the by-source index. Callers must hold
// commitMu and the idx write lock.
func (s *Store) removeEdgesLocked(rec *QueryRecord) {
	var removed []SessionEdge
	for _, e := range s.idx.edges {
		if e.From == rec.ID || e.To == rec.ID {
			removed = append(removed, e)
		}
	}
	if len(removed) == 0 {
		return
	}
	kept := make([]SessionEdge, 0, len(s.idx.edges)-len(removed))
	for _, e := range s.idx.edges {
		if e.From != rec.ID && e.To != rec.ID {
			kept = append(kept, e)
		}
	}
	s.idx.edges = kept
	for _, e := range removed {
		delete(s.edgeSet, e)
		removeFromBucket(s.idx.edgesFrom, e.From, e)
	}
}

// AssignSession records the session a query belongs to (set by the miner's
// session detector). Re-assigning the same session is a no-op so the periodic
// mining pass does not flood the mutation log.
func (s *Store) AssignSession(id QueryID, sessionID int64) error {
	if err := s.writable(); err != nil {
		return err
	}
	s.lockCommit()
	rec, err := s.lookup(id)
	if err != nil {
		s.unlockCommit()
		return err
	}
	if rec.SessionID == sessionID {
		s.unlockCommit()
		return nil
	}
	m := &Mutation{Op: OpAssignSession, ID: id, SessionID: sessionID}
	if err := s.apply(m); err != nil {
		s.unlockCommit()
		return err
	}
	s.emit(m)
	s.commitAndWait(m.walSeq)
	return nil
}

// AddEdge records a session edge between two logged queries. An edge that
// already exists is a no-op: the session detector re-derives the full edge
// set on every mining pass.
func (s *Store) AddEdge(edge SessionEdge) error {
	if err := s.writable(); err != nil {
		return err
	}
	s.lockCommit()
	if _, dup := s.edgeSet[edge]; dup {
		s.unlockCommit()
		return nil
	}
	m := &Mutation{Op: OpAddEdge, Edge: &edge}
	if err := s.apply(m); err != nil {
		s.unlockCommit()
		return err
	}
	s.emit(m)
	s.commitAndWait(m.walSeq)
	return nil
}

// Edges returns a copy of the session edge relation.
func (s *Store) Edges() []SessionEdge {
	s.idx.RLock()
	edges := s.idx.edges
	s.idx.RUnlock()
	return append([]SessionEdge(nil), edges...)
}

// EdgesFrom returns the edges leaving the given query, via the by-source
// index (O(degree) instead of a scan of the whole edge relation).
func (s *Store) EdgesFrom(id QueryID) []SessionEdge {
	s.idx.RLock()
	edges := s.idx.edgesFrom[id]
	s.idx.RUnlock()
	if len(edges) == 0 {
		return nil
	}
	return append([]SessionEdge(nil), edges...)
}

// MarkInvalid flags a query as invalidated (e.g. by a schema change) with a
// reason. Used by the Query Maintenance component.
func (s *Store) MarkInvalid(id QueryID, reason string) error {
	return s.mutate(&Mutation{Op: OpMarkInvalid, ID: id, Reason: reason})
}

// MarkValid clears the invalid flag (after a successful automatic repair).
func (s *Store) MarkValid(id QueryID) error {
	return s.mutate(&Mutation{Op: OpMarkValid, ID: id})
}

// MarkStatsStale flags the runtime statistics of a query as outdated.
func (s *Store) MarkStatsStale(id QueryID, stale bool) error {
	return s.mutate(&Mutation{Op: OpMarkStale, ID: id, Stale: stale})
}

// UpdateStats replaces a query's runtime statistics (e.g. after the
// maintenance component re-executes it) and clears the stale flag.
func (s *Store) UpdateStats(id QueryID, stats RuntimeStats) error {
	return s.mutate(&Mutation{Op: OpUpdateStats, ID: id, Stats: &stats})
}

// SetSample replaces a query's stored output sample, used when the
// maintenance component re-executes a query to refresh its statistics.
func (s *Store) SetSample(id QueryID, sample *OutputSample) error {
	return s.mutate(&Mutation{Op: OpSetSample, ID: id, Sample: sample})
}

// SetQuality records a quality score for the query (§4.4).
func (s *Store) SetQuality(id QueryID, score float64) error {
	return s.mutate(&Mutation{Op: OpSetQuality, ID: id, Score: score})
}

// ReplaceText rewrites the query text and canonical forms, used by the
// maintenance component's automatic repair. Features must be re-extracted by
// the caller and passed in. ReplaceText takes ownership of the updated
// record.
func (s *Store) ReplaceText(id QueryID, updated *QueryRecord) error {
	return s.mutate(&Mutation{Op: OpReplaceText, ID: id, Record: updated})
}

// mutate applies a mutation under the commit lock, emits it on success and
// waits for its durability outside the lock.
func (s *Store) mutate(m *Mutation) error {
	if err := s.writable(); err != nil {
		return err
	}
	s.lockCommit()
	if err := s.apply(m); err != nil {
		s.unlockCommit()
		return err
	}
	s.emit(m)
	s.commitAndWait(m.walSeq)
	return nil
}

// InvalidQueries returns the IDs of all queries currently flagged invalid.
func (s *Store) InvalidQueries() []QueryID {
	var out []QueryID
	s.Snapshot().scanAll(func(rec *QueryRecord) bool {
		if !rec.Valid {
			out = append(out, rec.ID)
		}
		return true
	})
	return out
}

// StaleQueries returns the IDs of all queries whose statistics are stale.
func (s *Store) StaleQueries() []QueryID {
	var out []QueryID
	s.Snapshot().scanAll(func(rec *QueryRecord) bool {
		if rec.StatsStale {
			out = append(out, rec.ID)
		}
		return true
	})
	return out
}
