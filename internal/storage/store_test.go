package storage

import (
	"errors"
	"testing"
	"time"
)

var (
	alice = Principal{User: "alice", Groups: []string{"limnology"}}
	bob   = Principal{User: "bob", Groups: []string{"limnology"}}
	carol = Principal{User: "carol", Groups: []string{"astro"}}
	admin = Principal{User: "root", Admin: true}
)

func putQuery(t testing.TB, s *Store, text, user, group string, vis Visibility) QueryID {
	t.Helper()
	rec, err := NewRecordFromSQL(text)
	if err != nil {
		t.Fatalf("NewRecordFromSQL(%q): %v", text, err)
	}
	rec.User = user
	rec.Group = group
	rec.Visibility = vis
	return s.Put(rec)
}

func newTestStore(t testing.TB) (*Store, []QueryID) {
	t.Helper()
	s := NewStore()
	ids := []QueryID{
		putQuery(t, s, "SELECT * FROM WaterTemp WHERE temp < 18", "alice", "limnology", VisibilityGroup),
		putQuery(t, s, "SELECT salinity, temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x", "alice", "limnology", VisibilityGroup),
		putQuery(t, s, "SELECT city FROM CityLocations WHERE state = 'WA'", "bob", "limnology", VisibilityPrivate),
		putQuery(t, s, "SELECT ra, dec FROM Stars WHERE magnitude < 6", "carol", "astro", VisibilityPublic),
	}
	return s, ids
}

func TestPutAndGet(t *testing.T) {
	s, ids := newTestStore(t)
	rec, err := s.Get(ids[0], alice)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if rec.User != "alice" || rec.Tables[0] != "WaterTemp" {
		t.Errorf("rec = %+v", rec)
	}
	if rec.Template == "" || rec.Fingerprint == 0 {
		t.Errorf("template/fingerprint not filled: %+v", rec)
	}
	if !rec.Valid {
		t.Errorf("new records should be valid")
	}
}

func TestGetNotFound(t *testing.T) {
	s, _ := newTestStore(t)
	if _, err := s.Get(QueryID(9999), admin); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
}

func TestRecordFeatureExtraction(t *testing.T) {
	s, ids := newTestStore(t)
	rec, _ := s.Get(ids[1], alice)
	if len(rec.Tables) != 2 {
		t.Errorf("tables = %v", rec.Tables)
	}
	// The join predicate should be recorded.
	foundJoin := false
	for _, p := range rec.Predicates {
		if p.IsJoin {
			foundJoin = true
		}
	}
	if !foundJoin {
		t.Errorf("join predicate missing: %+v", rec.Predicates)
	}
	if len(rec.Features) == 0 {
		t.Errorf("feature set empty")
	}
}

func TestNewRecordFromSQLInvalid(t *testing.T) {
	if _, err := NewRecordFromSQL("not valid sql"); err == nil {
		t.Error("expected parse error")
	}
}

func TestNewRecordFromSQLNonSelect(t *testing.T) {
	rec, err := NewRecordFromSQL("INSERT INTO t VALUES (1)")
	if err != nil {
		t.Fatalf("NewRecordFromSQL: %v", err)
	}
	if len(rec.Tables) != 0 {
		t.Errorf("DML should have no extracted tables")
	}
}

func TestAccessControl(t *testing.T) {
	s, ids := newTestStore(t)

	// Group visibility: bob (same group) can see alice's query.
	if _, err := s.Get(ids[0], bob); err != nil {
		t.Errorf("bob should see alice's group-visible query: %v", err)
	}
	// carol (different group) cannot.
	if _, err := s.Get(ids[0], carol); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("carol access err = %v, want ErrAccessDenied", err)
	}
	// Private visibility: only bob sees bob's private query.
	if _, err := s.Get(ids[2], alice); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("alice should not see bob's private query: %v", err)
	}
	if _, err := s.Get(ids[2], bob); err != nil {
		t.Errorf("bob should see his own query: %v", err)
	}
	// Public visibility: anyone sees carol's query.
	if _, err := s.Get(ids[3], alice); err != nil {
		t.Errorf("alice should see public query: %v", err)
	}
	// Admin sees everything.
	for _, id := range ids {
		if _, err := s.Get(id, admin); err != nil {
			t.Errorf("admin should see query %d: %v", id, err)
		}
	}
}

func TestAllRespectsVisibility(t *testing.T) {
	s, _ := newTestStore(t)
	if n := len(s.All(admin)); n != 4 {
		t.Errorf("admin sees %d, want 4", n)
	}
	if n := len(s.All(alice)); n != 3 {
		t.Errorf("alice sees %d, want 3 (her 2 + public)", n)
	}
	if n := len(s.All(carol)); n != 1 {
		t.Errorf("carol sees %d, want 1", n)
	}
}

func TestIndexes(t *testing.T) {
	s, _ := newTestStore(t)
	if got := s.ByTable("WaterTemp", admin); len(got) != 2 {
		t.Errorf("ByTable(WaterTemp) = %d, want 2", len(got))
	}
	if got := s.ByTable("watertemp", admin); len(got) != 2 {
		t.Errorf("ByTable should be case-insensitive")
	}
	// Only the first query references temp with an unambiguously resolvable
	// table (the second uses an unqualified name over two FROM tables).
	if got := s.ByAttribute("WaterTemp", "temp", admin); len(got) != 1 {
		t.Errorf("ByAttribute(WaterTemp.temp) = %d, want 1", len(got))
	}
	if got := s.ByUser("alice", admin); len(got) != 2 {
		t.Errorf("ByUser(alice) = %d, want 2", len(got))
	}
	if got := s.ByUser("alice", carol); len(got) != 0 {
		t.Errorf("carol should not see alice's queries via ByUser")
	}
	rec, _ := s.Get(QueryID(1), admin)
	if got := s.ByFingerprint(rec.Fingerprint, admin); len(got) != 1 {
		t.Errorf("ByFingerprint = %d, want 1", len(got))
	}
}

func TestTableCounts(t *testing.T) {
	s, _ := newTestStore(t)
	counts := s.TableCounts()
	if len(counts) == 0 {
		t.Fatal("no table counts")
	}
	if counts[0].Table != "WaterTemp" || counts[0].Count != 2 {
		t.Errorf("most popular = %+v, want WaterTemp:2", counts[0])
	}
	// Counts must be sorted descending.
	for i := 1; i < len(counts); i++ {
		if counts[i].Count > counts[i-1].Count {
			t.Errorf("counts not sorted: %+v", counts)
		}
	}
}

func TestAnnotations(t *testing.T) {
	s, ids := newTestStore(t)
	err := s.Annotate(ids[0], alice, Annotation{Text: "find temp and salinity of Seattle lakes"})
	if err != nil {
		t.Fatalf("Annotate: %v", err)
	}
	// Group member can annotate too.
	if err := s.Annotate(ids[0], bob, Annotation{Text: "reused for 2009 survey"}); err != nil {
		t.Fatalf("Annotate by group member: %v", err)
	}
	// Non-member cannot.
	if err := s.Annotate(ids[0], carol, Annotation{Text: "nope"}); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("carol annotate err = %v, want ErrAccessDenied", err)
	}
	rec, _ := s.Get(ids[0], alice)
	if len(rec.Annotations) != 2 {
		t.Fatalf("annotations = %d, want 2", len(rec.Annotations))
	}
	if rec.Annotations[0].Author != "alice" || rec.Annotations[0].At.IsZero() {
		t.Errorf("annotation author/time not defaulted: %+v", rec.Annotations[0])
	}
	if err := s.Annotate(QueryID(999), alice, Annotation{Text: "x"}); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing query annotate err = %v", err)
	}
}

func TestSetVisibility(t *testing.T) {
	s, ids := newTestStore(t)
	// Bob makes his private query group-visible.
	if err := s.SetVisibility(ids[2], bob, VisibilityGroup); err != nil {
		t.Fatalf("SetVisibility: %v", err)
	}
	if _, err := s.Get(ids[2], alice); err != nil {
		t.Errorf("alice should now see bob's group query: %v", err)
	}
	// Alice cannot change bob's visibility.
	if err := s.SetVisibility(ids[2], alice, VisibilityPublic); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("err = %v, want ErrAccessDenied", err)
	}
	// Admin can.
	if err := s.SetVisibility(ids[2], admin, VisibilityPublic); err != nil {
		t.Errorf("admin SetVisibility: %v", err)
	}
}

func TestDelete(t *testing.T) {
	s, ids := newTestStore(t)
	if err := s.Delete(ids[0], bob); !errors.Is(err, ErrAccessDenied) {
		t.Errorf("bob deleting alice's query err = %v, want ErrAccessDenied", err)
	}
	if err := s.Delete(ids[0], alice); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get(ids[0], admin); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleted query still retrievable")
	}
	if got := s.ByTable("WaterTemp", admin); len(got) != 1 {
		t.Errorf("index not updated after delete: %d", len(got))
	}
	if s.Count() != 3 {
		t.Errorf("count = %d, want 3", s.Count())
	}
	if err := s.Delete(QueryID(12345), admin); !errors.Is(err, ErrNotFound) {
		t.Errorf("deleting missing query err = %v", err)
	}
}

func TestSessionsAndEdges(t *testing.T) {
	s, ids := newTestStore(t)
	if err := s.AssignSession(ids[0], 7); err != nil {
		t.Fatalf("AssignSession: %v", err)
	}
	if err := s.AssignSession(ids[1], 7); err != nil {
		t.Fatalf("AssignSession: %v", err)
	}
	got := s.BySession(7, admin)
	if len(got) != 2 {
		t.Errorf("BySession = %d, want 2", len(got))
	}
	sessions := s.SessionIDs()
	if len(sessions) != 1 || sessions[0] != 7 {
		t.Errorf("SessionIDs = %v", sessions)
	}
	// Re-assignment moves the query to the new session.
	if err := s.AssignSession(ids[1], 8); err != nil {
		t.Fatalf("AssignSession: %v", err)
	}
	if got := s.BySession(7, admin); len(got) != 1 {
		t.Errorf("after reassignment session 7 has %d queries, want 1", len(got))
	}

	if err := s.AddEdge(SessionEdge{From: ids[0], To: ids[1], Type: EdgeModification, Diff: "+table WaterSalinity"}); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := s.AddEdge(SessionEdge{From: ids[0], To: QueryID(999)}); !errors.Is(err, ErrNotFound) {
		t.Errorf("AddEdge with missing target err = %v", err)
	}
	edges := s.EdgesFrom(ids[0])
	if len(edges) != 1 || edges[0].Type != EdgeModification {
		t.Errorf("edges = %+v", edges)
	}
	if err := s.AssignSession(QueryID(999), 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("AssignSession missing err = %v", err)
	}
}

func TestMaintenanceState(t *testing.T) {
	s, ids := newTestStore(t)
	if err := s.MarkInvalid(ids[0], "column WaterTemp.temp dropped"); err != nil {
		t.Fatalf("MarkInvalid: %v", err)
	}
	rec, _ := s.Get(ids[0], alice)
	if rec.Valid || rec.InvalidReason == "" {
		t.Errorf("record should be invalid: %+v", rec)
	}
	invalid := s.InvalidQueries()
	if len(invalid) != 1 || invalid[0] != ids[0] {
		t.Errorf("InvalidQueries = %v", invalid)
	}
	if err := s.MarkValid(ids[0]); err != nil {
		t.Fatalf("MarkValid: %v", err)
	}
	if len(s.InvalidQueries()) != 0 {
		t.Errorf("invalid list should be empty after MarkValid")
	}

	if err := s.MarkStatsStale(ids[1], true); err != nil {
		t.Fatalf("MarkStatsStale: %v", err)
	}
	if got := s.StaleQueries(); len(got) != 1 || got[0] != ids[1] {
		t.Errorf("StaleQueries = %v", got)
	}
	if err := s.UpdateStats(ids[1], RuntimeStats{ExecTime: 5 * time.Millisecond, ResultRows: 42}); err != nil {
		t.Fatalf("UpdateStats: %v", err)
	}
	rec, _ = s.Get(ids[1], alice)
	if rec.StatsStale || rec.Stats.ResultRows != 42 {
		t.Errorf("stats not updated: %+v", rec.Stats)
	}
	if err := s.SetQuality(ids[1], 0.8); err != nil {
		t.Fatalf("SetQuality: %v", err)
	}
	rec, _ = s.Get(ids[1], alice)
	if rec.QualityScore != 0.8 {
		t.Errorf("quality = %v", rec.QualityScore)
	}
}

func TestReplaceText(t *testing.T) {
	s, ids := newTestStore(t)
	updated, err := NewRecordFromSQL("SELECT * FROM LakeTemperatures WHERE temp < 18")
	if err != nil {
		t.Fatalf("NewRecordFromSQL: %v", err)
	}
	if err := s.ReplaceText(ids[0], updated); err != nil {
		t.Fatalf("ReplaceText: %v", err)
	}
	rec, _ := s.Get(ids[0], alice)
	if rec.Tables[0] != "LakeTemperatures" {
		t.Errorf("tables = %v", rec.Tables)
	}
	// Index follows the rewrite.
	if got := s.ByTable("LakeTemperatures", admin); len(got) != 1 {
		t.Errorf("ByTable(LakeTemperatures) = %d, want 1", len(got))
	}
	if got := s.ByTable("WaterTemp", admin); len(got) != 1 {
		t.Errorf("ByTable(WaterTemp) = %d, want 1 (one other query remains)", len(got))
	}
	if err := s.ReplaceText(QueryID(999), updated); !errors.Is(err, ErrNotFound) {
		t.Errorf("ReplaceText missing err = %v", err)
	}
}

func TestCloneIsolation(t *testing.T) {
	s, ids := newTestStore(t)
	rec, _ := s.Get(ids[0], alice)
	rec.Tables[0] = "Mutated"
	rec.Text = "mutated"
	rec2, _ := s.Get(ids[0], alice)
	if rec2.Tables[0] == "Mutated" || rec2.Text == "mutated" {
		t.Errorf("Get should return a copy, store was mutated")
	}
}

func TestUsersList(t *testing.T) {
	s, _ := newTestStore(t)
	users := s.Users()
	if len(users) != 3 {
		t.Errorf("users = %v, want 3 distinct users", users)
	}
}

func TestVisibilityString(t *testing.T) {
	if VisibilityPrivate.String() != "private" || VisibilityGroup.String() != "group" ||
		VisibilityPublic.String() != "public" || Visibility(99).String() != "unknown" {
		t.Error("Visibility.String labels wrong")
	}
	if EdgeTemporal.String() != "temporal" || EdgeModification.String() != "modification" ||
		EdgeInvestigation.String() != "investigation" || EdgeType(99).String() != "unknown" {
		t.Error("EdgeType.String labels wrong")
	}
}

func TestConcurrentPutAndRead(t *testing.T) {
	s := NewStore()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			rec, err := NewRecordFromSQL("SELECT * FROM WaterTemp WHERE temp < 18")
			if err != nil {
				t.Errorf("NewRecordFromSQL: %v", err)
				return
			}
			rec.User = "alice"
			s.Put(rec)
		}
	}()
	for i := 0; i < 200; i++ {
		s.All(admin)
		s.ByTable("WaterTemp", admin)
		s.TableCounts()
	}
	<-done
	if s.Count() != 200 {
		t.Errorf("count = %d, want 200", s.Count())
	}
}
