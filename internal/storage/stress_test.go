package storage

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentMutationStress drives the storage commit path the way the
// durable stack does — a hook stamping every mutation with the next WAL
// sequence, subscribers fanning out under the commit lock — from concurrent
// Put/PutBatch/Delete callers. The subscriber checks strict +1 sequence
// order without any locking of its own: under -race this test fails if the
// split commit path (prepare outside the lock, parallel shard stores, the
// durability wait after unlock) ever lets two emissions overlap.
func TestConcurrentMutationStress(t *testing.T) {
	s := NewStore()
	var seq uint64
	s.SetMutationHook(func(m *Mutation) {
		seq++
		m.SetWALSeq(seq)
	})
	var last uint64
	s.Subscribe("order", func(m *Mutation) {
		if m.WALSeq() != last+1 {
			t.Errorf("subscriber saw seq %d after %d; want strict +1 order", m.WALSeq(), last)
		}
		last = m.WALSeq()
	}, SubscribeOptions{})

	newRec := func(g, i int) *QueryRecord {
		rec, err := NewRecordFromSQL(
			fmt.Sprintf("SELECT temp FROM WaterTemp WHERE temp < %d", g*10000+i))
		if err != nil {
			panic(err)
		}
		rec.User = fmt.Sprintf("user-%d", g)
		return rec
	}

	const (
		putters   = 4
		putsEach  = 50
		batchers  = 2
		batches   = 5
		batchSize = 80 // over parallelStoreThreshold: exercises shard fan-out
		deleters  = 2
		delsEach  = 25
	)
	var wg sync.WaitGroup
	for g := 0; g < putters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < putsEach; i++ {
				s.Put(newRec(g, i))
			}
		}(g)
	}
	for g := 0; g < batchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				recs := make([]*QueryRecord, batchSize)
				for i := range recs {
					recs[i] = newRec(100+g, b*batchSize+i)
				}
				s.PutBatch(recs)
			}
		}(g)
	}
	for g := 0; g < deleters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := Principal{User: fmt.Sprintf("user-%d", 200+g)}
			for i := 0; i < delsEach; i++ {
				id := s.Put(newRec(200+g, i))
				if err := s.Delete(id, p); err != nil {
					t.Errorf("delete %d: %v", id, err)
				}
			}
		}(g)
	}
	wg.Wait()

	want := uint64(putters*putsEach + batchers*batches*batchSize + deleters*delsEach*2)
	if last != want {
		t.Errorf("last seq = %d, want %d", last, want)
	}
	if live := putters*putsEach + batchers*batches*batchSize; s.Count() != live {
		t.Errorf("store holds %d records, want %d", s.Count(), live)
	}
}
