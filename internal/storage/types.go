// Package storage implements the CQMS Query Storage (Figure 4 of the paper):
// the durable log of every query submitted through the Query Profiler, its
// extracted syntactic features (the Figure 1 feature relations Queries,
// DataSources, Attributes, Predicates), runtime statistics, output samples,
// user annotations, session membership and the session edge relation.
//
// The store is an in-memory structure with inverted indexes on tables,
// attributes, users and fingerprints so that the Meta-query Executor can
// answer feature and keyword searches interactively, and it can materialise
// its feature relations as engine tables so that SQL meta-queries (the
// query-by-feature paradigm of §2.2) execute against a real DBMS substrate.
package storage

import (
	"strings"
	"time"
)

// QueryID identifies a logged query.
type QueryID int64

// Visibility controls who may see a logged query (paper §2.4: access control
// rules restrict knowledge transfer to collaborating group members).
type Visibility int

// Visibility levels.
const (
	// VisibilityPrivate: only the owning user.
	VisibilityPrivate Visibility = iota
	// VisibilityGroup: the owning user's group.
	VisibilityGroup
	// VisibilityPublic: every user of the CQMS.
	VisibilityPublic
)

// String returns a readable label.
func (v Visibility) String() string {
	switch v {
	case VisibilityPrivate:
		return "private"
	case VisibilityGroup:
		return "group"
	case VisibilityPublic:
		return "public"
	default:
		return "unknown"
	}
}

// Principal identifies the user on whose behalf a meta-query or browse
// operation runs, used for access-control filtering.
type Principal struct {
	User   string
	Groups []string
	// Admin principals bypass visibility checks (System Administrative
	// Interaction Mode, §2.4).
	Admin bool
}

// MemberOf reports whether the principal belongs to the named group.
func (p Principal) MemberOf(group string) bool {
	for _, g := range p.Groups {
		if g == group {
			return true
		}
	}
	return false
}

// AttributeRow is one row of the Attributes feature relation of Figure 1:
// (qid, attrName, relName) extended with the clause the attribute appears in.
type AttributeRow struct {
	Attr   string
	Rel    string
	Clause string // SELECT, WHERE, GROUPBY, HAVING, ORDERBY, JOIN
}

// PredicateRow is one row of the Predicates feature relation of Figure 1:
// (qid, attrName, relName, op, const).
type PredicateRow struct {
	Attr   string
	Rel    string
	Op     string
	Const  string
	IsJoin bool
	// For join predicates the right-hand side.
	RightRel  string
	RightAttr string
}

// RuntimeStats are the runtime query features captured by the profiler
// (§4.1): execution time, result cardinality and the schema version the
// query ran against.
type RuntimeStats struct {
	ExecTime      time.Duration
	ResultRows    int
	ResultColumns int
	Error         string
	SchemaVersion int64
	ExecutedAt    time.Time
}

// OutputSample is a bounded sample of the query's result (§4.1 "Profiling
// query results"): columns plus up to MaxRows stringified rows.
type OutputSample struct {
	Columns   []string
	Rows      [][]string
	TotalRows int
	// Truncated is true when the sample holds fewer rows than the result.
	Truncated bool
}

// Annotation is a user-supplied note on a query or on a fragment of it
// (§2.1: users capture semantic information about their queries).
type Annotation struct {
	Author   string
	Text     string
	Fragment string // optional query fragment the annotation refers to
	At       time.Time
}

// EdgeType classifies the relationship between two queries in a session
// (§4.1: temporal, modification and investigation relations).
type EdgeType int

// Edge types.
const (
	EdgeTemporal EdgeType = iota
	EdgeModification
	EdgeInvestigation
)

// String returns a readable label.
func (e EdgeType) String() string {
	switch e {
	case EdgeTemporal:
		return "temporal"
	case EdgeModification:
		return "modification"
	case EdgeInvestigation:
		return "investigation"
	default:
		return "unknown"
	}
}

// SessionEdge is one row of the normalised session edge relation: a pair of
// query identifiers, an edge type and the diff summary used as the edge
// label in the Figure 2 visualisation.
type SessionEdge struct {
	From QueryID
	To   QueryID
	Type EdgeType
	Diff string
}

// QueryRecord is the full stored representation of one logged query: raw
// text, canonical/template forms, the extracted feature relations, runtime
// statistics, an output sample, annotations and maintenance state.
type QueryRecord struct {
	ID          QueryID
	Text        string
	Canonical   string
	Template    string
	Fingerprint uint64
	ExactHash   uint64

	User       string
	Group      string
	Visibility Visibility
	IssuedAt   time.Time

	// Syntactic features (Figure 1 relations).
	Tables     []string
	Attributes []AttributeRow
	Predicates []PredicateRow
	Aggregates []string
	GroupBy    []string
	Features   []string // flat feature set used by the miner

	// Runtime features and output sample.
	Stats  RuntimeStats
	Sample *OutputSample

	Annotations []Annotation

	// Session membership assigned by the miner.
	SessionID int64

	// Maintenance state (§4.4).
	Valid         bool
	InvalidReason string
	StatsStale    bool
	QualityScore  float64

	// lowerText and lowerCanonical cache strings.ToLower of Text and
	// Canonical so keyword and substring search do not re-lower every
	// record's full text on every scan. They are unexported so they stay out
	// of the WAL/snapshot JSON; the store recomputes them whenever a record
	// enters it (Put, replay, restore, text replacement).
	lowerText      string
	lowerCanonical string
}

// prepare computes the derived lower-cased search cache. The store calls it
// before a record becomes visible to readers; records are immutable after
// that point.
func (q *QueryRecord) prepare() {
	q.lowerText = strings.ToLower(q.Text)
	q.lowerCanonical = strings.ToLower(q.Canonical)
}

// LowerText returns the lower-cased query text, cached at insert time.
// Records that never passed through a store fall back to lowering on the fly.
func (q *QueryRecord) LowerText() string {
	if q.lowerText == "" && q.Text != "" {
		return strings.ToLower(q.Text)
	}
	return q.lowerText
}

// LowerCanonical returns the lower-cased canonical text, cached at insert
// time.
func (q *QueryRecord) LowerCanonical() string {
	if q.lowerCanonical == "" && q.Canonical != "" {
		return strings.ToLower(q.Canonical)
	}
	return q.lowerCanonical
}

// shallowCopy returns a copy sharing every slice and pointer field with the
// original. The store's copy-on-write mutations start from a shallow copy and
// replace only the fields they change, so concurrent readers holding the old
// version keep a fully consistent record.
func (q *QueryRecord) shallowCopy() *QueryRecord {
	out := *q
	return &out
}

// Clone returns a deep copy of the record so callers can mutate the result
// without affecting the store.
func (q *QueryRecord) Clone() *QueryRecord {
	out := *q
	out.Tables = append([]string(nil), q.Tables...)
	out.Attributes = append([]AttributeRow(nil), q.Attributes...)
	out.Predicates = append([]PredicateRow(nil), q.Predicates...)
	out.Aggregates = append([]string(nil), q.Aggregates...)
	out.GroupBy = append([]string(nil), q.GroupBy...)
	out.Features = append([]string(nil), q.Features...)
	out.Annotations = append([]Annotation(nil), q.Annotations...)
	if q.Sample != nil {
		s := *q.Sample
		s.Columns = append([]string(nil), q.Sample.Columns...)
		s.Rows = make([][]string, len(q.Sample.Rows))
		for i, r := range q.Sample.Rows {
			s.Rows[i] = append([]string(nil), r...)
		}
		out.Sample = &s
	}
	return &out
}

// VisibleTo reports whether the record may be shown to the principal under
// the paper's access-control requirement.
func (q *QueryRecord) VisibleTo(p Principal) bool {
	if p.Admin || q.User == p.User {
		return true
	}
	switch q.Visibility {
	case VisibilityPublic:
		return true
	case VisibilityGroup:
		return q.Group != "" && p.MemberOf(q.Group)
	default:
		return false
	}
}
