package storage

import (
	"context"
	"fmt"
	"sort"
	"strings"
)

// View is a zero-clone read view over the store, created by Store.Snapshot.
//
// Consistency contract:
//
//   - Record-level atomicity: records are immutable; a scan observes each
//     record either entirely before or entirely after any mutation, never a
//     half-applied one.
//   - Membership: Scan visits exactly the queries that were logged when the
//     snapshot was taken, in insertion order — queries inserted afterwards
//     are not visited, queries deleted afterwards are skipped.
//   - Freshness: record contents are resolved at read time, so a long-lived
//     view observes the latest committed version of each record (not the
//     version that was current at snapshot time).
//   - The indexed variants (ScanByTable, ...) resolve the index bucket when
//     they are called, restricted to the snapshot's membership.
//
// Records handed to scan callbacks are shared and MUST NOT be mutated; use
// QueryRecord.Clone for an owned copy. All scans enforce the storage layer's
// access-control rules for the given principal.
type View struct {
	store *Store
	ids   []QueryID
	// limit is the ID high-water mark at snapshot time: indexed scans skip
	// IDs above it so queries inserted after the snapshot stay invisible
	// (IDs are assigned monotonically and never reused).
	limit QueryID
}

// Snapshot captures a consistent read view of the store. It is cheap — a
// slice-header capture under a short read lock, with no copying of records —
// so callers should take a fresh snapshot per logical read operation.
func (s *Store) Snapshot() *View {
	limit := QueryID(s.nextID.Load())
	s.idx.RLock()
	ids := s.idx.order
	s.idx.RUnlock()
	return &View{store: s, ids: ids, limit: limit}
}

// SnapshotAt captures a read view whose membership is pinned at an earlier
// high-water mark (a View.Limit from a previous Snapshot). Queries inserted
// after that mark are invisible; queries deleted since are skipped. It is the
// primitive behind cursor pagination: every page of one logical listing is
// served from views pinned at the same mark, so paginating to exhaustion
// yields exactly the first page's membership regardless of concurrent
// inserts.
func (s *Store) SnapshotAt(limit QueryID) *View {
	if current := QueryID(s.nextID.Load()); limit > current {
		limit = current
	}
	s.idx.RLock()
	ids := s.idx.order
	s.idx.RUnlock()
	return &View{store: s, ids: ids, limit: limit}
}

// HighWater returns the current ID high-water mark: every stored query has
// ID <= HighWater(), and IDs are assigned monotonically and never reused.
func (s *Store) HighWater() QueryID { return QueryID(s.nextID.Load()) }

// Limit returns the view's ID high-water mark (the membership boundary).
// Pass it to SnapshotAt to build later views pinned at the same membership.
func (v *View) Limit() QueryID { return v.limit }

// ScanCheckEvery is how many records a context-aware scan visits between
// context checks: a power of two so the check compiles to a mask, small
// enough that a cancelled request stops a scan within microseconds.
const ScanCheckEvery = 64

// ScanWithContext wraps a scan callback with a periodic context check so
// that a long scan over the query log aborts soon after the caller goes away
// (client disconnect, request timeout). Callers must inspect ctx.Err()
// afterwards to distinguish an aborted scan from an exhausted one; partial
// results from an aborted scan are discarded by the serving layers.
func ScanWithContext(ctx context.Context, fn func(*QueryRecord) bool) func(*QueryRecord) bool {
	n := 0
	return func(rec *QueryRecord) bool {
		if n++; n&(ScanCheckEvery-1) == 0 && ctx.Err() != nil {
			return false
		}
		return fn(rec)
	}
}

// Len returns the number of queries the snapshot captured (including any
// deleted since, which scans skip).
func (v *View) Len() int { return len(v.ids) }

// Get returns the current version of a visible record without cloning it.
// The record must be treated as read-only. Queries deleted since the
// snapshot report ErrNotFound.
func (v *View) Get(id QueryID, p Principal) (*QueryRecord, error) {
	rec, ok := v.store.loadRecord(id)
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrNotFound, id)
	}
	if !rec.VisibleTo(p) {
		return nil, fmt.Errorf("%w: query %d", ErrAccessDenied, id)
	}
	return rec, nil
}

// scanIDs drives a scan over an explicit ID list, skipping deleted records
// and records invisible to the principal. The callback returns false to stop.
func (v *View) scanIDs(ids []QueryID, p Principal, fn func(*QueryRecord) bool) {
	for _, id := range ids {
		if id > v.limit {
			continue
		}
		rec, ok := v.store.loadRecord(id)
		if !ok || !rec.VisibleTo(p) {
			continue
		}
		if !fn(rec) {
			return
		}
	}
}

// Scan visits every visible record in insertion (temporal) order. Return
// false from fn to stop early.
func (v *View) Scan(p Principal, fn func(*QueryRecord) bool) {
	v.scanIDs(v.ids, p, fn)
}

// after narrows an ascending ID list to the suffix strictly greater than the
// cursor ID. IDs are assigned monotonically under the commit lock and both
// the insertion order and the per-key index buckets append in commit order,
// so the lists are sorted and a binary search finds the resume point: a page
// costs O(log n + page) instead of rescanning the prefix.
func after(ids []QueryID, cursor QueryID) []QueryID {
	i := sort.Search(len(ids), func(i int) bool { return ids[i] > cursor })
	return ids[i:]
}

// ScanAfter is Scan resuming strictly after the given query ID. With a view
// pinned by SnapshotAt, repeated ScanAfter calls paginate the snapshot's
// membership without duplicates or gaps under concurrent inserts.
func (v *View) ScanAfter(cursor QueryID, p Principal, fn func(*QueryRecord) bool) {
	v.scanIDs(after(v.ids, cursor), p, fn)
}

// ScanByUserAfter is ScanByUser resuming strictly after the given query ID.
func (v *View) ScanByUserAfter(user string, cursor QueryID, p Principal, fn func(*QueryRecord) bool) {
	v.scanIDs(after(v.store.indexUser(user), cursor), p, fn)
}

// scanAll visits every record in the snapshot regardless of visibility; it
// backs store-internal maintenance helpers (admin-equivalent scans).
func (v *View) scanAll(fn func(*QueryRecord) bool) {
	v.scanIDs(v.ids, Principal{Admin: true}, fn)
}

// Records collects the visible records in insertion order, without cloning.
// The returned records are shared and must be treated as read-only.
func (v *View) Records(p Principal) []*QueryRecord {
	out := make([]*QueryRecord, 0, len(v.ids))
	v.Scan(p, func(rec *QueryRecord) bool {
		out = append(out, rec)
		return true
	})
	return out
}

// ScanByTable visits the visible queries whose FROM clause references the
// table (case-insensitive).
func (v *View) ScanByTable(table string, p Principal, fn func(*QueryRecord) bool) {
	v.scanIDs(v.store.indexTable(strings.ToLower(table)), p, fn)
}

// ScanByAttribute visits the visible queries that reference relName.attrName
// (case-insensitive).
func (v *View) ScanByAttribute(rel, attr string, p Principal, fn func(*QueryRecord) bool) {
	v.scanIDs(v.store.indexAttribute(strings.ToLower(rel+"."+attr)), p, fn)
}

// ScanByUser visits the visible queries submitted by the given user, in
// temporal order.
func (v *View) ScanByUser(user string, p Principal, fn func(*QueryRecord) bool) {
	v.scanIDs(v.store.indexUser(user), p, fn)
}

// ScanByFingerprint visits the visible queries with the given template
// fingerprint.
func (v *View) ScanByFingerprint(fp uint64, p Principal, fn func(*QueryRecord) bool) {
	v.scanIDs(v.store.indexFingerprint(fp), p, fn)
}

// ScanBySession visits the visible queries of one session in temporal order
// (index buckets maintain ascending ID order; see insertIntoBucket).
func (v *View) ScanBySession(sessionID int64, p Principal, fn func(*QueryRecord) bool) {
	v.scanIDs(v.store.indexSession(sessionID), p, fn)
}

// The index accessors capture a copy-on-write bucket header under a short
// read lock; the caller may iterate it lock-free (see the idx field docs).

func (s *Store) indexTable(key string) []QueryID {
	s.idx.RLock()
	defer s.idx.RUnlock()
	return s.idx.byTable[key]
}

func (s *Store) indexAttribute(key string) []QueryID {
	s.idx.RLock()
	defer s.idx.RUnlock()
	return s.idx.byAttribute[key]
}

func (s *Store) indexUser(user string) []QueryID {
	s.idx.RLock()
	defer s.idx.RUnlock()
	return s.idx.byUser[user]
}

func (s *Store) indexFingerprint(fp uint64) []QueryID {
	s.idx.RLock()
	defer s.idx.RUnlock()
	return s.idx.byFingerprint[fp]
}

func (s *Store) indexSession(sessionID int64) []QueryID {
	s.idx.RLock()
	defer s.idx.RUnlock()
	return s.idx.bySession[sessionID]
}
