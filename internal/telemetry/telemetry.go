// Package telemetry is the CQMS metrics layer: a zero-dependency registry of
// atomic counters, gauges and fixed-bucket latency histograms with Prometheus
// text-format exposition. The hot paths (Counter.Inc, Gauge.Add,
// Histogram.Observe) are lock-free and allocation-free; registration and
// label-child creation take locks but happen once per metric, at wiring time.
//
// Every instrument method is nil-receiver safe: a nil *Counter ignores Inc,
// a nil *Histogram ignores Observe. Instrumented code can therefore keep a
// possibly-nil metric field and call it unconditionally — an uninstrumented
// path costs one predictable branch, no registry lookup and no interface
// dispatch.
package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets is the default histogram bucket layout: roughly exponential
// duration bounds from 1µs to 2.5s, wide enough to cover both an in-memory
// commit (~µs) and a slow fsync or recovery-sized request (~s).
var DefBuckets = []time.Duration{
	time.Microsecond,
	2500 * time.Nanosecond,
	5 * time.Microsecond,
	10 * time.Microsecond,
	25 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	2500 * time.Millisecond,
}

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one. Safe on a nil receiver.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n. Safe on a nil receiver.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count; 0 on a nil receiver.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value (e.g. in-flight requests).
type Gauge struct {
	v atomic.Int64
}

// Inc adds one. Safe on a nil receiver.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one. Safe on a nil receiver.
func (g *Gauge) Dec() { g.Add(-1) }

// Add adds delta (which may be negative). Safe on a nil receiver.
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Set replaces the value. Safe on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Value returns the current value; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket latency histogram. Bounds are inclusive upper
// limits (Prometheus `le` semantics); one implicit +Inf bucket catches the
// overflow. Observe is lock-free: one linear scan over ~20 bounds and three
// atomic adds.
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Uint64 // len(bounds)+1, last is +Inf
	sum    atomic.Int64    // nanoseconds
	total  atomic.Uint64
}

// Observe records one duration. Negative durations clamp to zero. Safe on a
// nil receiver.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	h.total.Add(1)
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of all observed durations; 0 on a nil receiver.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		// Gauge funcs expose as plain gauges.
		return "gauge"
	}
}

// child is one labeled instance inside a family; exactly one field (per the
// family kind) is set.
type child struct {
	values []string
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// family is all instances sharing one metric name.
type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []time.Duration
	admin   bool

	mu       sync.RWMutex
	children map[string]*child
}

const childKeySep = "\x00"

// child returns (creating on first use) the instance for the given label
// values. Lookup takes an RLock; creation is once per label combination.
func (f *family) child(values []string) *child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %q expects %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, childKeySep)
	f.mu.RLock()
	ch := f.children[key]
	f.mu.RUnlock()
	if ch != nil {
		return ch
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if ch = f.children[key]; ch != nil {
		return ch
	}
	ch = &child{values: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		ch.ctr = &Counter{}
	case kindGauge:
		ch.gauge = &Gauge{}
	case kindHistogram:
		ch.hist = &Histogram{
			bounds: f.buckets,
			counts: make([]atomic.Uint64, len(f.buckets)+1),
		}
	}
	f.children[key] = ch
	return ch
}

// Registry holds metric families and renders them in Prometheus text format.
// The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// family returns (creating if needed) the named family. Registration is
// idempotent: re-registering the same name with the same kind and labels
// returns the existing family, so independently wired subsystems can share
// a metric. A kind or label-arity mismatch is a programming error and panics.
func (r *Registry) family(name, help string, k kind, labels []string, buckets []time.Duration) *family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) {
			panic(fmt.Sprintf("telemetry: invalid label name %q on metric %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != k || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("telemetry: metric %q re-registered with a different kind or label set", name))
		}
		return f
	}
	f := &family{
		name:     name,
		help:     help,
		kind:     k,
		labels:   append([]string(nil), labels...),
		children: make(map[string]*child),
	}
	if k == kindHistogram {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		f.buckets = append([]time.Duration(nil), buckets...)
	}
	r.families[name] = f
	return f
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, kindCounter, nil, nil).child(nil).ctr
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, kindGauge, nil, nil).child(nil).gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at scrape time.
// Re-registering replaces the function.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.family(name, help, kindGaugeFunc, nil, nil)
	ch := f.child(nil)
	f.mu.Lock()
	ch.fn = fn
	f.mu.Unlock()
}

// Histogram registers (or returns) an unlabeled histogram. A nil or empty
// buckets slice selects DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []time.Duration) *Histogram {
	return r.family(name, help, kindHistogram, nil, buckets).child(nil).hist
}

// CounterVec is a family of counters keyed by label values.
type CounterVec struct{ f *family }

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{f: r.family(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values, creating it on first
// use. Callers on hot paths should cache the returned *Counter.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.child(values).ctr
}

// GaugeFuncVec is a family of scrape-time computed gauges keyed by label
// values.
type GaugeFuncVec struct{ f *family }

// GaugeFuncVec registers (or returns) a labeled gauge-func family.
func (r *Registry) GaugeFuncVec(name, help string, labels ...string) *GaugeFuncVec {
	return &GaugeFuncVec{f: r.family(name, help, kindGaugeFunc, labels, nil)}
}

// With installs fn as the value function for the given label values.
func (v *GaugeFuncVec) With(fn func() float64, values ...string) {
	ch := v.f.child(values)
	v.f.mu.Lock()
	ch.fn = fn
	v.f.mu.Unlock()
}

// HistogramVec is a family of histograms keyed by label values.
type HistogramVec struct{ f *family }

// HistogramVec registers (or returns) a labeled histogram family. A nil or
// empty buckets slice selects DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []time.Duration, labels ...string) *HistogramVec {
	return &HistogramVec{f: r.family(name, help, kindHistogram, labels, buckets)}
}

// With returns the histogram for the given label values, creating it on
// first use. Callers on hot paths should cache the returned *Histogram.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.child(values).hist
}

// AdminOnly marks the named families as admin-scoped: WritePrometheus omits
// them unless includeAdmin is set. Unknown names are ignored (the family may
// simply not be registered in this process).
func (r *Registry) AdminOnly(names ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range names {
		if f, ok := r.families[name]; ok {
			f.admin = true
		}
	}
}

// WritePrometheus renders every family in Prometheus text exposition format
// (version 0.0.4), families sorted by name and children by label values.
// Families marked AdminOnly are omitted unless includeAdmin is true.
// Durations are exposed in seconds, per Prometheus convention.
func (r *Registry) WritePrometheus(w io.Writer, includeAdmin bool) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		if f.admin && !includeAdmin {
			continue
		}
		b.Reset()
		f.render(&b)
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) render(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)

	f.mu.RLock()
	children := make([]*child, 0, len(f.children))
	for _, ch := range f.children {
		children = append(children, ch)
	}
	f.mu.RUnlock()
	sort.Slice(children, func(i, j int) bool {
		return strings.Join(children[i].values, childKeySep) < strings.Join(children[j].values, childKeySep)
	})

	for _, ch := range children {
		switch f.kind {
		case kindCounter:
			b.WriteString(f.name)
			writeLabels(b, f.labels, ch.values, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatUint(ch.ctr.Value(), 10))
			b.WriteByte('\n')
		case kindGauge:
			b.WriteString(f.name)
			writeLabels(b, f.labels, ch.values, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatInt(ch.gauge.Value(), 10))
			b.WriteByte('\n')
		case kindGaugeFunc:
			var v float64
			if ch.fn != nil {
				v = ch.fn()
			}
			b.WriteString(f.name)
			writeLabels(b, f.labels, ch.values, "", "")
			b.WriteByte(' ')
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
			b.WriteByte('\n')
		case kindHistogram:
			renderHistogram(b, f, ch)
		}
	}
}

func renderHistogram(b *strings.Builder, f *family, ch *child) {
	h := ch.hist
	var cum uint64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		b.WriteString(f.name)
		b.WriteString("_bucket")
		writeLabels(b, f.labels, ch.values, "le", strconv.FormatFloat(bound.Seconds(), 'g', -1, 64))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(cum, 10))
		b.WriteByte('\n')
	}
	cum += h.counts[len(h.bounds)].Load()
	b.WriteString(f.name)
	b.WriteString("_bucket")
	writeLabels(b, f.labels, ch.values, "le", "+Inf")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(cum, 10))
	b.WriteByte('\n')

	b.WriteString(f.name)
	b.WriteString("_sum")
	writeLabels(b, f.labels, ch.values, "", "")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatFloat(h.Sum().Seconds(), 'g', -1, 64))
	b.WriteByte('\n')

	b.WriteString(f.name)
	b.WriteString("_count")
	writeLabels(b, f.labels, ch.values, "", "")
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(h.Count(), 10))
	b.WriteByte('\n')
}

// writeLabels renders `{a="x",b="y"}` (nothing when there are no labels),
// appending the extra pair — used for histogram `le` — last.
func writeLabels(b *strings.Builder, names, values []string, extraName, extraValue string) {
	if len(names) == 0 && extraName == "" {
		return
	}
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	return labelEscaper.Replace(s)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	return helpEscaper.Replace(s)
}
