package telemetry

import (
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_events_total", "events")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same instance.
	if again := r.Counter("test_events_total", "events"); again.Value() != 5 {
		t.Errorf("re-registered counter = %d, want 5", again.Value())
	}

	g := r.Gauge("test_in_flight", "in flight")
	g.Inc()
	g.Inc()
	g.Dec()
	g.Add(10)
	if got := g.Value(); got != 11 {
		t.Errorf("gauge = %d, want 11", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Errorf("gauge after Set = %d, want -3", got)
	}
}

func TestNilReceiversAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(7)
	g.Inc()
	g.Dec()
	g.Set(5)
	h.Observe(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments should read as zero")
	}
}

func TestHistogramBucketPlacement(t *testing.T) {
	r := NewRegistry()
	buckets := []time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond}
	h := r.Histogram("test_latency_seconds", "latency", buckets)
	h.Observe(500 * time.Microsecond) // <= 1ms
	h.Observe(time.Millisecond)       // le is inclusive: still the 1ms bucket
	h.Observe(5 * time.Millisecond)   // <= 10ms
	h.Observe(50 * time.Millisecond)  // <= 100ms
	h.Observe(500 * time.Millisecond) // +Inf
	h.Observe(-time.Second)           // clamps to 0 -> first bucket

	out := scrape(t, r, false)
	for _, want := range []string{
		`test_latency_seconds_bucket{le="0.001"} 3`,
		`test_latency_seconds_bucket{le="0.01"} 4`,
		`test_latency_seconds_bucket{le="0.1"} 5`,
		`test_latency_seconds_bucket{le="+Inf"} 6`,
		`test_latency_seconds_count 6`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	wantSum := (500*time.Microsecond + time.Millisecond + 5*time.Millisecond +
		50*time.Millisecond + 500*time.Millisecond).Seconds()
	if h.Sum().Seconds() != wantSum {
		t.Errorf("sum = %v, want %v", h.Sum().Seconds(), wantSum)
	}
}

// TestConcurrentWriters hammers one counter, gauge and histogram from many
// goroutines; totals must be exact. The CI race job runs this under -race.
func TestConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "t")
	g := r.Gauge("test_gauge", "t")
	h := r.Histogram("test_hist_seconds", "t", nil)
	vec := r.CounterVec("test_labeled_total", "t", "worker")

	const workers = 8
	const perWorker = 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mine := vec.With("w" + string(rune('a'+w)))
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i) * time.Microsecond)
				mine.Inc()
			}
		}(w)
	}
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != workers*perWorker {
		t.Errorf("gauge = %d, want %d", got, workers*perWorker)
	}
	if got := h.Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
	for w := 0; w < workers; w++ {
		if got := vec.With("w" + string(rune('a'+w))).Value(); got != perWorker {
			t.Errorf("labeled counter %d = %d, want %d", w, got, perWorker)
		}
	}
	// Bucket counts must sum to the observation count.
	var sum uint64
	for i := range h.counts {
		sum += h.counts[i].Load()
	}
	if sum != workers*perWorker {
		t.Errorf("bucket sum = %d, want %d", sum, workers*perWorker)
	}
}

// sampleLine matches a Prometheus text-format sample:
// name{label="value",...} value
var sampleLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"(,[a-zA-Z_+][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})? -?[0-9+.eEInf-]+$`)

func scrape(t *testing.T, r *Registry, admin bool) string {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b, admin); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	return b.String()
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second family").Inc()
	r.Counter("a_total", "first family").Add(2)
	vec := r.CounterVec("labeled_total", "labels and escaping", "path", "class")
	vec.With(`C:\logs`+"\n", "2xx").Add(3)
	r.GaugeFunc("computed", "computed at scrape", func() float64 { return 4.5 })
	gv := r.GaugeFuncVec("shards", "per shard", "shard")
	gv.With(func() float64 { return 7 }, "3")
	r.Histogram("h_seconds", "hist", []time.Duration{time.Millisecond}).Observe(time.Microsecond)

	out := scrape(t, r, false)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	for _, line := range lines {
		if strings.HasPrefix(line, "#") {
			if !strings.HasPrefix(line, "# HELP ") && !strings.HasPrefix(line, "# TYPE ") {
				t.Errorf("bad comment line %q", line)
			}
			continue
		}
		if !sampleLine.MatchString(line) {
			t.Errorf("sample line does not parse: %q", line)
		}
	}

	// Families sorted by name.
	aIdx := strings.Index(out, "# HELP a_total")
	bIdx := strings.Index(out, "# HELP b_total")
	if aIdx < 0 || bIdx < 0 || aIdx > bIdx {
		t.Errorf("families not sorted:\n%s", out)
	}
	for _, want := range []string{
		"# TYPE a_total counter",
		"# TYPE computed gauge",
		"# TYPE h_seconds histogram",
		`labeled_total{path="C:\\logs\n",class="2xx"} 3`,
		"computed 4.5",
		`shards{shard="3"} 7`,
		`h_seconds_bucket{le="0.001"} 1`,
		`h_seconds_bucket{le="+Inf"} 1`,
		"h_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}

func TestAdminOnlyFamiliesGated(t *testing.T) {
	r := NewRegistry()
	r.Counter("public_total", "public").Inc()
	r.Counter("secret_total", "admin only").Inc()
	r.AdminOnly("secret_total", "never_registered_total")

	plain := scrape(t, r, false)
	if strings.Contains(plain, "secret_total") {
		t.Errorf("admin family leaked into non-admin scrape:\n%s", plain)
	}
	if !strings.Contains(plain, "public_total") {
		t.Errorf("public family missing:\n%s", plain)
	}
	admin := scrape(t, r, true)
	if !strings.Contains(admin, "secret_total") {
		t.Errorf("admin scrape missing admin family:\n%s", admin)
	}
}

func TestHotPathsAreZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "t")
	h := r.Histogram("alloc_seconds", "t", nil)
	vec := r.CounterVec("alloc_labeled_total", "t", "k")
	cached := vec.With("v")

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(time.Millisecond) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v per op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { cached.Inc() }); n != 0 {
		t.Errorf("cached vec child Inc allocates %v per op", n)
	}
}

func TestInvalidRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("ok_total", "t")
	for name, fn := range map[string]func(){
		"kind mismatch": func() { r.Gauge("ok_total", "t") },
		"bad name":      func() { r.Counter("1bad", "t") },
		"bad label":     func() { r.CounterVec("ok2_total", "t", "bad-label") },
		"label arity":   func() { r.CounterVec("ok3_total", "t", "a").With("x", "y") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
