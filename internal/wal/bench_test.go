package wal

import (
	"testing"
)

// BenchmarkLogAppend measures the raw frame-append path in isolation:
// sequence assignment plus encoding into the pending buffer, with the
// committer draining in the background. Under SyncOff nothing waits on
// durability, so allocs/op here is the per-record allocation cost of
// Log.Append itself — the group-commit refactor keeps it at zero (the
// pending buffer and the frame header are reused across appends).
func BenchmarkLogAppend(b *testing.B) {
	l, err := OpenLog(testOptions(b.TempDir()))
	if err != nil {
		b.Fatal(err)
	}
	payload := []byte(`{"op":"put","record":{"id":1,"text":"SELECT * FROM runs WHERE quality > 0.9"}}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
}
