package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// crashCopy simulates a crash by copying the log directory to a fresh one
// with the active segment truncated to keepBytes — the on-disk state a kill
// between the committer's batch write and its fsync could leave behind,
// depending on how much of the un-fsynced tail the OS happened to flush.
// It runs on the committer goroutine, so it reports failures with t.Error
// (t.Fatal would Goexit the committer and wedge the log).
func crashCopy(t *testing.T, dir, activeSeg string, keepBytes int64) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Error(err)
		return ""
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Error(err)
			return ""
		}
		if filepath.Join(dir, e.Name()) == activeSeg && int64(len(data)) > keepBytes {
			data = data[:keepBytes]
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Error(err)
			return ""
		}
	}
	return dst
}

// TestGroupCommitCrashConsistency kills the log (by snapshotting its
// directory) in the exact window group commit introduces: after a batch's
// frames are written to the segment file but before the fsync that
// acknowledges them. Whatever part of that un-fsynced tail survives — none
// of it, a torn half-frame, or all of it — recovery must surface every
// record that was acknowledged before the crash and never a corrupt one.
func TestGroupCommitCrashConsistency(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.Sync = SyncAlways
	l, err := OpenLog(opts)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: individually acknowledged records. Each Append returns only
	// after its covering fsync, so all of these must survive any crash.
	const acked = 20
	for i := 1; i <= acked; i++ {
		if _, err := l.Append([]byte(fmt.Sprintf("acked-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2: install the crash hook, then submit a concurrent batch that
	// is never acknowledged before the "crash". The hook fires between the
	// batch's write and its fsync and captures three torn directory states.
	var snaps []string
	var once sync.Once
	hookDone := make(chan struct{})
	l.seqMu.Lock()
	l.beforeSync = func() {
		once.Do(func() {
			defer close(hookDone)
			l.ioMu.Lock()
			seg := l.file.Name()
			synced := l.syncedBytes
			written := l.segBytes
			l.ioMu.Unlock()
			if written <= synced {
				t.Error("hook fired with no un-fsynced tail; batch write missing")
			}
			// Nothing past the last fsync survived.
			snaps = append(snaps, crashCopy(t, dir, seg, synced))
			// A torn half-frame survived.
			if written > synced+8 {
				snaps = append(snaps, crashCopy(t, dir, seg, synced+8))
			}
			// The whole write survived, but no fsync acknowledged it.
			snaps = append(snaps, crashCopy(t, dir, seg, written))
		})
	}
	l.seqMu.Unlock()

	const unacked = 8
	var wg sync.WaitGroup
	for i := 0; i < unacked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.Append([]byte(fmt.Sprintf("unacked-%d", i))); err != nil {
				t.Errorf("unacked append: %v", err)
			}
		}(i)
	}
	select {
	case <-hookDone:
	case <-time.After(10 * time.Second):
		t.Fatal("beforeSync hook never fired")
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	for i, snapDir := range snaps {
		if snapDir == "" {
			continue // crashCopy already reported the failure
		}
		l2, err := OpenLog(testOptions(snapDir))
		if err != nil {
			t.Fatalf("snap %d: reopening crashed log: %v", i, err)
		}
		recovered := make(map[uint64]string)
		var maxSeq uint64
		err = l2.Replay(0, func(seq uint64, payload []byte) error {
			recovered[seq] = string(payload)
			if seq > maxSeq {
				maxSeq = seq
			}
			return nil
		})
		if err != nil {
			t.Fatalf("snap %d: replay: %v", i, err)
		}
		// Zero acknowledged-record loss, with payloads intact.
		for s := uint64(1); s <= acked; s++ {
			if got, want := recovered[s], fmt.Sprintf("acked-%d", s); got != want {
				t.Errorf("snap %d: acked seq %d = %q, want %q", i, s, got, want)
			}
		}
		// Whatever survived beyond the acknowledged records must be a
		// gapless, uncorrupted prefix of the unacknowledged batch.
		if int(maxSeq) != len(recovered) {
			t.Errorf("snap %d: recovered %d records up to seq %d; sequence has gaps", i, len(recovered), maxSeq)
		}
		if maxSeq > acked+unacked {
			t.Errorf("snap %d: recovered seq %d beyond anything appended", i, maxSeq)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if len(snaps) != 3 {
		t.Errorf("captured %d crash snapshots, want 3", len(snaps))
	}
}

// TestAckSemanticsPerPolicy pins down what "acknowledged" means under each
// sync policy now that durability is a separate stage: SyncAlways holds the
// ack hostage to the batch fsync; SyncInterval and SyncOff acknowledge as
// soon as the record is sequenced, exactly as before group commit.
func TestAckSemanticsPerPolicy(t *testing.T) {
	for _, policy := range []SyncPolicy{SyncInterval, SyncOff} {
		t.Run(fmt.Sprintf("policy=%d", policy), func(t *testing.T) {
			opts := testOptions(t.TempDir())
			opts.Sync = policy
			l, err := OpenLog(opts)
			if err != nil {
				t.Fatal(err)
			}
			// Stall the committer between write and fsync: acks must not
			// depend on the committer finishing its iteration.
			release := make(chan struct{})
			l.seqMu.Lock()
			l.beforeSync = func() { <-release }
			l.seqMu.Unlock()
			done := make(chan error, 1)
			go func() {
				_, err := l.Append([]byte("sequenced"))
				done <- err
			}()
			select {
			case err := <-done:
				if err != nil {
					t.Fatal(err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Append blocked on durability under a non-always policy")
			}
			close(release)
			l.seqMu.Lock()
			l.beforeSync = nil
			l.seqMu.Unlock()
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}

	// Under SyncAlways the same stall must delay the ack until the fsync
	// completes.
	opts := testOptions(t.TempDir())
	opts.Sync = SyncAlways
	l, err := OpenLog(opts)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	l.seqMu.Lock()
	l.beforeSync = func() { <-release }
	l.seqMu.Unlock()
	done := make(chan error, 1)
	go func() {
		_, err := l.Append([]byte("durable"))
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("SyncAlways Append returned before its fsync (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Append never acknowledged after fsync was released")
	}
	l.seqMu.Lock()
	l.beforeSync = nil
	l.seqMu.Unlock()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
