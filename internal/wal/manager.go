package wal

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/storage"
	"repro/internal/telemetry"
)

// Config is the durability section of the CQMS configuration.
type Config struct {
	// Dir is the data directory; empty disables durability.
	Dir string
	// SyncPolicy is "always", "interval" or "off".
	SyncPolicy string
	// SyncInterval is the flush period under the interval policy.
	SyncInterval time.Duration
	// SegmentBytes is the segment rotation threshold.
	SegmentBytes int64
	// GroupWindow is the optional group-commit accumulation window: how long
	// the committer waits after noticing pending appends before it writes
	// and fsyncs, trading per-append latency for larger shared batches. Zero
	// (the default) adds no latency; batching still happens while a previous
	// fsync is in flight.
	GroupWindow time.Duration
	// SnapshotEvery is how often the background scheduler snapshots the
	// store and compacts the log (0 disables scheduled snapshots).
	SnapshotEvery time.Duration
	// Metrics, when set, receives the WAL's instruments: append/fsync/
	// snapshot/compaction latency, segment gauges and recovery outcome.
	Metrics *telemetry.Registry
}

// DefaultConfig returns the default durability configuration for a data
// directory (interval fsync, 8 MiB segments, snapshot every 5 minutes).
func DefaultConfig(dir string) Config {
	return Config{
		Dir:           dir,
		SyncPolicy:    SyncInterval.String(),
		SyncInterval:  DefaultSyncInterval,
		SegmentBytes:  DefaultSegmentBytes,
		SnapshotEvery: 5 * time.Minute,
	}
}

// Enabled reports whether the configuration turns durability on.
func (c Config) Enabled() bool { return c.Dir != "" }

// RecoveryInfo summarises what Open reconstructed from disk.
type RecoveryInfo struct {
	// SnapshotSeq is the log sequence the loaded snapshot covered (0 when no
	// snapshot existed).
	SnapshotSeq uint64
	// Replayed is the number of log records applied after the snapshot.
	Replayed int
	// TornTail reports that a partially written final record was discarded.
	TornTail bool
	// Duration is the wall-clock time the recovery took.
	Duration time.Duration
	// Queries is the store's record count after recovery.
	Queries int
	// CheckpointRestored names the derived-state bus subscribers whose
	// counters were restored from a snapshot sidecar checkpoint (then caught
	// up by the tail replay) instead of being rebuilt from a full-log scan.
	CheckpointRestored []string
	// CheckpointRebuilt names the subscribers that fell back to a full
	// rebuild: their sidecar was missing, torn, of an unknown version, or
	// failed to decode.
	CheckpointRebuilt []string
}

// Info describes the current durable state for the admin API and cqmsctl
// (the HTTP layer maps it onto its own wire DTO).
type Info struct {
	Dir                  string
	SyncPolicy           string
	LastSeq              uint64
	SnapshotSeq          uint64
	AppendsSinceSnapshot int64
	Segments             []SegmentInfo
	// SnapshotSidecars lists the derived-state checkpoint sections of the
	// newest snapshot (the one recovery would load), without their payloads.
	SnapshotSidecars []SidecarInfo
	// AppendError reports a broken durability pipeline (failed append or
	// background flush): mutations after it are acknowledged but not durable.
	AppendError string
}

// Manager binds a storage.Store to a segmented log: it recovers the store
// from disk on Open, appends every subsequent mutation to the log through the
// store's mutation hook, and writes snapshots that bound recovery time.
type Manager struct {
	store *storage.Store
	log   *Log
	cfg   Config

	// lastSeq is the sequence of the last appended mutation. It is written
	// from the mutation hook (under the store's write lock) and read during
	// snapshots (under the store's read lock), so a snapshot's sequence is
	// exactly consistent with its contents.
	lastSeq atomic.Uint64
	// appendsSinceSnapshot lets the scheduler skip snapshots of an idle store.
	appendsSinceSnapshot atomic.Int64

	// snapMu serialises snapshot/compaction runs.
	snapMu      sync.Mutex
	snapshotSeq atomic.Uint64

	// sidecarMu guards sidecars, the sections of the newest snapshot (set at
	// Open from what recovery read, and after every snapshot from what was
	// written), so Info never re-reads multi-megabyte snapshot files.
	sidecarMu sync.Mutex
	sidecars  []SidecarInfo

	// appendErr records the first log-append failure; surfaced by Err and
	// Close rather than failing the in-memory mutation that already happened.
	errMu     sync.Mutex
	appendErr error

	// met holds the manager's instruments; nil when cfg.Metrics was nil.
	// Set once in Open before the mutation hook is installed.
	met *managerMetrics
}

// Open recovers the store from cfg.Dir (newest snapshot + replay of the log
// tail) and installs itself in the WAL slot of the store's mutation event
// bus so every future mutation is logged. The WAL slot is always notified
// first, before any derived-state subscriber, so everything a subscriber
// observed is durably recoverable; replayed mutations bypass the slot (the
// log must not be re-appended to itself) while derived-state subscribers do
// observe them and rebuild incrementally during this call. The store must be
// empty of queries: recovery replaces its contents.
func Open(store *storage.Store, cfg Config) (*Manager, *RecoveryInfo, error) {
	recoveryStart := time.Now()
	policy, err := ParseSyncPolicy(cfg.SyncPolicy)
	if err != nil {
		return nil, nil, err
	}
	log, err := OpenLog(Options{
		Dir:          cfg.Dir,
		Sync:         policy,
		SyncInterval: cfg.SyncInterval,
		SegmentBytes: cfg.SegmentBytes,
		GroupWindow:  cfg.GroupWindow,
		Metrics:      cfg.Metrics,
	})
	if err != nil {
		return nil, nil, err
	}
	info := &RecoveryInfo{TornTail: log.Truncated()}

	snapSeq, payload, sidecars, ok, err := LatestSnapshotWithSidecars(cfg.Dir)
	if err != nil {
		log.Close()
		return nil, nil, err
	}
	if ok {
		var st storage.StoreState
		if err := json.Unmarshal(payload, &st); err != nil {
			log.Close()
			return nil, nil, fmt.Errorf("wal: decoding snapshot: %w", err)
		}
		cps := make([]storage.SubscriberCheckpoint, 0, len(sidecars))
		for _, sc := range sidecars {
			cps = append(cps, storage.SubscriberCheckpoint{Name: sc.Name, Version: sc.Version, Data: sc.Data})
		}
		info.CheckpointRestored, info.CheckpointRebuilt = store.RestoreStateWithCheckpoints(&st, cps)
		info.SnapshotSeq = snapSeq
	}
	// Compaction deletes segments a snapshot covers, so the surviving log must
	// begin no later than snapSeq+1. A gap means the snapshot that justified
	// the deletion is unreadable or missing: recovering anyway would silently
	// serve a store with a hole in it.
	if segs, err := log.Segments(); err != nil {
		log.Close()
		return nil, nil, err
	} else if len(segs) > 0 && segs[0].FirstSeq > snapSeq+1 {
		log.Close()
		return nil, nil, fmt.Errorf(
			"wal: log begins at sequence %d but the newest readable snapshot covers only %d: snapshot missing or corrupt",
			segs[0].FirstSeq, snapSeq)
	}
	err = log.Replay(snapSeq, func(seq uint64, payload []byte) error {
		m, err := storage.DecodeMutation(payload)
		if err != nil {
			return fmt.Errorf("wal: record %d: %w", seq, err)
		}
		if err := store.Apply(m); err != nil {
			return fmt.Errorf("wal: replaying record %d (%s): %w", seq, m.Op, err)
		}
		info.Replayed++
		return nil
	})
	if err != nil {
		log.Close()
		return nil, nil, err
	}
	info.Queries = store.Count()

	// A crash can leave the WAL tail truncated below a durable snapshot; new
	// appends must not reuse the snapshot-covered sequences.
	log.EnsureSeqAtLeast(snapSeq)
	m := &Manager{store: store, log: log, cfg: cfg}
	m.lastSeq.Store(log.LastSeq())
	m.snapshotSeq.Store(snapSeq)
	for _, sc := range sidecars {
		m.sidecars = append(m.sidecars, sc.Info())
	}
	info.Duration = time.Since(recoveryStart)
	m.enableMetrics(cfg.Metrics, info, info.Duration)
	store.SetMutationHook(m.appendMutation)
	store.SetDurabilityWaiter(m.waitDurable)
	return m, info, nil
}

// encodeBuffer is one pooled JSON encode target: the encoder permanently
// wraps its buffer, so a steady-state append reuses both instead of
// allocating a fresh marshal result per mutation.
type encodeBuffer struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var encodePool = sync.Pool{New: func() any {
	b := &encodeBuffer{}
	b.enc = json.NewEncoder(&b.buf)
	return b
}}

// appendMutation is the bus's WAL-slot callback. It runs under the store's
// commit lock, which keeps log order identical to apply order. It only
// sequences the mutation — encode plus a buffer append — and stamps the
// assigned WAL sequence on the mutation; the durability wait happens in
// waitDurable, after the store releases the commit lock, so the next writer
// can sequence (and share an fsync with) this one.
func (m *Manager) appendMutation(mut *storage.Mutation) {
	var start time.Time
	if m.met != nil {
		start = time.Now()
	}
	eb := encodePool.Get().(*encodeBuffer)
	eb.buf.Reset()
	if err := eb.enc.Encode(mut); err != nil {
		encodePool.Put(eb)
		m.recordErr(fmt.Errorf("wal: encoding %s mutation: %w", mut.Op, err))
		return
	}
	payload := eb.buf.Bytes()
	payload = payload[:len(payload)-1] // drop Encode's trailing newline
	seq, err := m.log.AppendAsync(payload)
	encodePool.Put(eb) // AppendAsync copied the payload into its batch buffer
	if m.met != nil {
		m.met.append.Observe(time.Since(start))
	}
	if seq != 0 {
		// Even on a failed fsync the record is in the log; snapshots must
		// cover it or the next recovery would re-apply it.
		mut.SetWALSeq(seq)
		m.lastSeq.Store(seq)
		m.appendsSinceSnapshot.Add(1)
	}
	if err != nil {
		m.recordErr(err)
	}
}

// waitDurable is the store's durability-wait slot: mutating operations call
// it with their highest WAL sequence after releasing the commit lock. Under
// the always policy it blocks until the group-commit fsync covering seq
// completes; under interval/off it returns immediately (those policies
// acknowledge before durability by design).
func (m *Manager) waitDurable(seq uint64) {
	if err := m.log.WaitDurable(seq); err != nil {
		m.recordErr(err)
	}
}

func (m *Manager) recordErr(err error) {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	if m.appendErr == nil {
		m.appendErr = err
	}
}

// Err returns the first append or background-flush failure, if any.
// Durability is best-effort after such a failure; the in-memory store
// remains correct.
func (m *Manager) Err() error {
	m.errMu.Lock()
	defer m.errMu.Unlock()
	if m.appendErr != nil {
		return m.appendErr
	}
	return m.log.Err()
}

// Snapshot writes a full-store snapshot and returns its path. The snapshot's
// sequence is captured under the store lock, so it covers exactly the
// mutations applied before it and recovery replays exactly the ones after.
func (m *Manager) Snapshot() (string, uint64, error) {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	return m.snapshotLocked()
}

func (m *Manager) snapshotLocked() (string, uint64, error) {
	// Snapshots are rare; an unconditional clock read is fine here.
	start := time.Now()
	var seq uint64
	st, cps := m.store.StateWithCheckpoints(func() { seq = m.lastSeq.Load() })
	payload, err := json.Marshal(st)
	if err != nil {
		return "", 0, fmt.Errorf("wal: encoding snapshot: %w", err)
	}
	sidecars := make([]SidecarSection, 0, len(cps))
	for _, cp := range cps {
		sidecars = append(sidecars, SidecarSection{Name: cp.Name, Version: cp.Version, Data: cp.Data})
	}
	path, err := WriteSnapshotWithSidecars(m.cfg.Dir, seq, payload, sidecars)
	if err != nil {
		return "", 0, err
	}
	m.snapshotSeq.Store(seq)
	m.appendsSinceSnapshot.Store(0)
	infos := make([]SidecarInfo, 0, len(sidecars))
	for _, sc := range sidecars {
		infos = append(infos, sc.Info())
	}
	m.sidecarMu.Lock()
	m.sidecars = infos
	m.sidecarMu.Unlock()
	if m.met != nil {
		m.met.snapshot.Observe(time.Since(start))
	}
	return path, seq, nil
}

// Compact snapshots the store, deletes the log segments the snapshot covers
// and prunes older snapshots. It returns the snapshot path and the number of
// removed segments.
func (m *Manager) Compact() (string, uint64, int, error) {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	start := time.Now()
	path, seq, err := m.snapshotLocked()
	if err != nil {
		return "", 0, 0, err
	}
	removed, err := m.log.RemoveSegmentsCoveredBy(seq)
	if err != nil {
		return path, seq, removed, err
	}
	if _, err := RemoveSnapshotsBefore(m.cfg.Dir, seq); err != nil {
		return path, seq, removed, err
	}
	if m.met != nil {
		m.met.compaction.Observe(time.Since(start))
	}
	return path, seq, removed, nil
}

// MaybeSnapshot snapshots and compacts only if mutations were appended since
// the last snapshot; the background scheduler calls it periodically.
func (m *Manager) MaybeSnapshot() error {
	if m.appendsSinceSnapshot.Load() == 0 {
		return nil
	}
	_, _, _, err := m.Compact()
	return err
}

// Sync flushes any buffered log records to stable storage.
func (m *Manager) Sync() error { return m.log.Sync() }

// Info reports the durable state.
func (m *Manager) Info() (Info, error) {
	segs, err := m.log.Segments()
	if err != nil {
		return Info{}, err
	}
	m.sidecarMu.Lock()
	sidecars := append([]SidecarInfo(nil), m.sidecars...)
	m.sidecarMu.Unlock()
	info := Info{
		Dir:                  m.cfg.Dir,
		SyncPolicy:           m.cfg.SyncPolicy,
		LastSeq:              m.lastSeq.Load(),
		SnapshotSeq:          m.snapshotSeq.Load(),
		AppendsSinceSnapshot: m.appendsSinceSnapshot.Load(),
		Segments:             segs,
		SnapshotSidecars:     sidecars,
	}
	if err := m.Err(); err != nil {
		info.AppendError = err.Error()
	}
	return info, nil
}

// Config returns the durability configuration the manager was opened with.
func (m *Manager) Config() Config { return m.cfg }

// Close detaches the hook and durability waiter, flushes the log and closes
// it. It returns the first append error encountered during the manager's
// lifetime, if any.
func (m *Manager) Close() error {
	m.store.SetMutationHook(nil)
	m.store.SetDurabilityWaiter(nil)
	err := m.log.Close()
	if aerr := m.Err(); err == nil {
		err = aerr
	}
	return err
}
