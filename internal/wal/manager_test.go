package wal

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/metaquery"
	"repro/internal/storage"
)

var admin = storage.Principal{Admin: true}

// buildStore logs n queries through a durable store, exercising every
// mutation class the issue names: puts, annotations, visibility changes,
// session assignment and edges, invalidation/repair, stats, samples, quality
// scores and a deletion.
func buildStore(t *testing.T, store *storage.Store, n int) {
	t.Helper()
	tables := []string{"WaterTemp", "WaterSalinity", "Observations", "Stations"}
	for i := 0; i < n; i++ {
		table := tables[i%len(tables)]
		rec, err := storage.NewRecordFromSQL(
			fmt.Sprintf("SELECT %s.temp, %s.lake FROM %s WHERE %s.temp < %d", table, table, table, table, i))
		if err != nil {
			t.Fatal(err)
		}
		rec.User = fmt.Sprintf("user%d", i%3)
		rec.Group = "limnology"
		rec.Visibility = storage.VisibilityGroup
		rec.IssuedAt = time.Unix(1700000000+int64(i)*60, 0).UTC()
		rec.Stats = storage.RuntimeStats{
			ExecTime:   time.Duration(i+1) * time.Millisecond,
			ResultRows: i * 7,
			ExecutedAt: rec.IssuedAt,
		}
		id := store.Put(rec)

		owner := storage.Principal{User: rec.User, Groups: []string{"limnology"}}
		if i%2 == 0 {
			if err := store.Annotate(id, owner, storage.Annotation{
				Text: fmt.Sprintf("note on %d", i), Fragment: table,
				At: rec.IssuedAt.Add(time.Second),
			}); err != nil {
				t.Fatal(err)
			}
		}
		if i%3 == 0 {
			if err := store.SetVisibility(id, owner, storage.VisibilityPublic); err != nil {
				t.Fatal(err)
			}
		}
		if err := store.AssignSession(id, int64(i/4+1)); err != nil {
			t.Fatal(err)
		}
		if i > 0 && i%4 != 0 {
			if err := store.AddEdge(storage.SessionEdge{
				From: id - 1, To: id, Type: storage.EdgeModification, Diff: "tweaked predicate",
			}); err != nil {
				t.Fatal(err)
			}
		}
		if i%5 == 0 {
			if err := store.MarkInvalid(id, "schema drift"); err != nil {
				t.Fatal(err)
			}
		}
		if i%10 == 0 {
			if err := store.MarkValid(id); err != nil {
				t.Fatal(err)
			}
			if err := store.UpdateStats(id, storage.RuntimeStats{
				ExecTime: 42 * time.Millisecond, ResultRows: 9, ExecutedAt: rec.IssuedAt.Add(time.Minute),
			}); err != nil {
				t.Fatal(err)
			}
			if err := store.SetSample(id, &storage.OutputSample{
				Columns: []string{"temp", "lake"}, Rows: [][]string{{"11.5", "Washington"}}, TotalRows: 9, Truncated: true,
			}); err != nil {
				t.Fatal(err)
			}
			if err := store.SetQuality(id, 0.75); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Delete one mid-log query so recovery also replays a removal.
	victim := storage.QueryID(n / 2)
	if rec, err := store.Get(victim, admin); err == nil {
		if err := store.Delete(victim, storage.Principal{User: rec.User}); err != nil {
			t.Fatal(err)
		}
	}
}

// assertStoresEqual checks deep equality of store contents (via the
// serialised state, which includes every record field, the edges and the ID
// counter) and of index-backed search results.
func assertStoresEqual(t *testing.T, want, got *storage.Store) {
	t.Helper()
	wantJSON, err := json.Marshal(want.State())
	if err != nil {
		t.Fatal(err)
	}
	gotJSON, err := json.Marshal(got.State())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantJSON, gotJSON) {
		t.Fatalf("recovered state differs from original\noriginal:  %.400s...\nrecovered: %.400s...", wantJSON, gotJSON)
	}

	// Index-backed lookups: tables, attributes, users, sessions, edges.
	group := storage.Principal{User: "user1", Groups: []string{"limnology"}}
	for _, p := range []storage.Principal{admin, group} {
		for _, table := range []string{"WaterTemp", "WaterSalinity", "Observations"} {
			if w, g := ids(want.ByTable(table, p)), ids(got.ByTable(table, p)); !reflect.DeepEqual(w, g) {
				t.Fatalf("ByTable(%s) as %q: want %v, got %v", table, p.User, w, g)
			}
			if w, g := ids(want.ByAttribute(table, "temp", p)), ids(got.ByAttribute(table, "temp", p)); !reflect.DeepEqual(w, g) {
				t.Fatalf("ByAttribute(%s.temp) as %q: want %v, got %v", table, p.User, w, g)
			}
		}
		for _, user := range []string{"user0", "user1", "user2"} {
			if w, g := ids(want.ByUser(user, p)), ids(got.ByUser(user, p)); !reflect.DeepEqual(w, g) {
				t.Fatalf("ByUser(%s) as %q: want %v, got %v", user, p.User, w, g)
			}
		}
	}
	if !reflect.DeepEqual(want.SessionIDs(), got.SessionIDs()) {
		t.Fatalf("SessionIDs: want %v, got %v", want.SessionIDs(), got.SessionIDs())
	}
	for _, sid := range want.SessionIDs() {
		if w, g := ids(want.BySession(sid, admin)), ids(got.BySession(sid, admin)); !reflect.DeepEqual(w, g) {
			t.Fatalf("BySession(%d): want %v, got %v", sid, w, g)
		}
	}
	if !reflect.DeepEqual(want.Edges(), got.Edges()) {
		t.Fatalf("Edges: want %v, got %v", want.Edges(), got.Edges())
	}

	// Keyword search runs on the recovered indexes through the meta-query
	// executor, the paper's interactive search path.
	wantMatches, err := metaquery.New(want).Keyword(context.Background(), admin, "watertemp")
	if err != nil {
		t.Fatalf("Keyword(want): %v", err)
	}
	gotMatches, err := metaquery.New(got).Keyword(context.Background(), admin, "watertemp")
	if err != nil {
		t.Fatalf("Keyword(got): %v", err)
	}
	if len(wantMatches) == 0 || len(wantMatches) != len(gotMatches) {
		t.Fatalf("keyword search: want %d matches, got %d", len(wantMatches), len(gotMatches))
	}
	for i := range wantMatches {
		if wantMatches[i].Record.ID != gotMatches[i].Record.ID {
			t.Fatalf("keyword search order differs at %d: %d vs %d",
				i, wantMatches[i].Record.ID, gotMatches[i].Record.ID)
		}
	}
}

func ids(recs []*storage.QueryRecord) []storage.QueryID {
	out := make([]storage.QueryID, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.ID)
	}
	return out
}

func testConfig(dir string) Config {
	cfg := DefaultConfig(dir)
	cfg.SyncPolicy = "off" // tests close cleanly; no fsyncs needed
	return cfg
}

func TestCrashRecoveryRoundTrip(t *testing.T) {
	dir := t.TempDir()
	store := storage.NewStore()
	mgr, info, err := Open(store, testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotSeq != 0 || info.Replayed != 0 {
		t.Fatalf("fresh dir recovered %+v", info)
	}
	buildStore(t, store, 40)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := storage.NewStore()
	mgr2, info2, err := Open(recovered, testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if info2.Replayed == 0 {
		t.Fatal("recovery replayed nothing")
	}
	if info2.Queries != store.Count() {
		t.Fatalf("recovered %d queries, want %d", info2.Queries, store.Count())
	}
	assertStoresEqual(t, store, recovered)

	// New writes after recovery continue the log without clashing IDs.
	rec, err := storage.NewRecordFromSQL("SELECT Stations.name FROM Stations")
	if err != nil {
		t.Fatal(err)
	}
	rec.User = "user0"
	id := recovered.Put(rec)
	if id <= 40 {
		t.Fatalf("post-recovery Put assigned id %d, want > 40", id)
	}
}

func TestRecoveryWithSnapshotAndTail(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.SegmentBytes = 4 << 10 // force several segments
	store := storage.NewStore()
	mgr, _, err := Open(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	buildStore(t, store, 30)

	// Snapshot + compact mid-stream, then keep writing: recovery must load
	// the snapshot and replay only the tail.
	path, seq, removed, err := mgr.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if seq == 0 || path == "" {
		t.Fatalf("compact returned (%q, %d)", path, seq)
	}
	if removed == 0 {
		t.Fatal("compaction removed no segments")
	}
	buildStore(t, store, 20) // more mutations after the snapshot
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	recovered := storage.NewStore()
	mgr2, info, err := Open(recovered, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if info.SnapshotSeq != seq {
		t.Fatalf("recovered from snapshot %d, want %d", info.SnapshotSeq, seq)
	}
	if info.Replayed == 0 {
		t.Fatal("no tail records replayed after the snapshot")
	}
	assertStoresEqual(t, store, recovered)
}

func TestTornWriteRecoversToLastValidRecord(t *testing.T) {
	dir := t.TempDir()
	store := storage.NewStore()
	mgr, _, err := Open(store, testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	buildStore(t, store, 20)
	// Capture the state before the final mutation: that mutation's log record
	// is about to be torn, so recovery must land exactly here.
	want := store.State()
	rec, err := storage.NewRecordFromSQL("SELECT Observations.id FROM Observations")
	if err != nil {
		t.Fatal(err)
	}
	rec.User = "user0"
	store.Put(rec)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final record: chop bytes off the newest segment's tail.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(dir, segs[len(segs)-1].Name)
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	recovered := storage.NewStore()
	mgr2, rinfo, err := Open(recovered, testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	if !rinfo.TornTail {
		t.Fatal("recovery did not report the torn tail")
	}
	wantStore := storage.NewStore()
	wantStore.RestoreState(want)
	assertStoresEqual(t, wantStore, recovered)

	// The torn record's sequence is reused by the next mutation.
	rec2, _ := storage.NewRecordFromSQL("SELECT Stations.name FROM Stations")
	rec2.User = "user1"
	recovered.Put(rec2)
	if err := mgr2.Err(); err != nil {
		t.Fatalf("append after torn-tail recovery failed: %v", err)
	}
}

func TestSnapshotBeyondTornTailDoesNotReuseSequences(t *testing.T) {
	dir := t.TempDir()
	store := storage.NewStore()
	mgr, _, err := Open(store, testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	buildStore(t, store, 10)
	// Durable snapshot at the current head...
	if _, seq, err := mgr.Snapshot(); err != nil || seq == 0 {
		t.Fatalf("Snapshot: seq=%d err=%v", seq, err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	// ...then simulate a crash that lost the last WAL records: the tail is
	// truncated below the snapshot's sequence.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(dir, segs[len(segs)-1].Name)
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-40); err != nil {
		t.Fatal(err)
	}

	recovered := storage.NewStore()
	mgr2, rinfo, err := Open(recovered, testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	snapSeq := rinfo.SnapshotSeq
	// New mutations must be logged past the snapshot sequence, or the next
	// recovery would silently skip them.
	rec, _ := storage.NewRecordFromSQL("SELECT Stations.name FROM Stations")
	rec.User = "user0"
	recovered.Put(rec)
	recoveredCount := recovered.Count()
	if err := mgr2.Close(); err != nil {
		t.Fatal(err)
	}

	again := storage.NewStore()
	mgr3, rinfo3, err := Open(again, testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr3.Close()
	if rinfo3.Replayed == 0 {
		t.Fatalf("post-snapshot mutation was not replayed (snapshot seq %d)", snapSeq)
	}
	if again.Count() != recoveredCount {
		t.Fatalf("second recovery has %d queries, want %d", again.Count(), recoveredCount)
	}
	assertStoresEqual(t, recovered, again)
}

func TestOpenRejectsMissingLogPrefix(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig(dir)
	cfg.SegmentBytes = 2 << 10 // several segments, so compaction removes some
	store := storage.NewStore()
	mgr, _, err := Open(store, cfg)
	if err != nil {
		t.Fatal(err)
	}
	buildStore(t, store, 10)
	if _, _, _, err := mgr.Compact(); err != nil {
		t.Fatal(err)
	}
	buildStore(t, store, 5)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	// Destroy the snapshot that justified compaction. With records only
	// reachable through it, recovery must refuse rather than serve a store
	// with a hole in it.
	snaps, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range snaps {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if segs[0].FirstSeq == 1 {
		t.Fatal("compaction removed no segments; test needs a truncated log")
	}
	if _, _, err := Open(storage.NewStore(), cfg); err == nil {
		t.Fatal("Open succeeded over a log with a missing prefix")
	}
}

func TestMaybeSnapshotSkipsIdleStore(t *testing.T) {
	dir := t.TempDir()
	store := storage.NewStore()
	mgr, _, err := Open(store, testConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	buildStore(t, store, 5)
	if err := mgr.MaybeSnapshot(); err != nil {
		t.Fatal(err)
	}
	first, err := mgr.Info()
	if err != nil {
		t.Fatal(err)
	}
	if first.SnapshotSeq == 0 {
		t.Fatal("MaybeSnapshot did not snapshot a dirty store")
	}
	// No mutations since: a second call must not write a new snapshot.
	if err := mgr.MaybeSnapshot(); err != nil {
		t.Fatal(err)
	}
	second, err := mgr.Info()
	if err != nil {
		t.Fatal(err)
	}
	if second.SnapshotSeq != first.SnapshotSeq {
		t.Fatalf("idle MaybeSnapshot moved snapshot seq %d -> %d", first.SnapshotSeq, second.SnapshotSeq)
	}
}
