package wal

import (
	"time"

	"repro/internal/telemetry"
)

// logMetrics instruments the log's fsync path. Fields are read-only after
// OpenLog; a nil *logMetrics (uninstrumented log) costs one branch per sync.
type logMetrics struct {
	fsync *telemetry.Histogram
	// fsyncs is pre-labeled with this log's sync policy, so the counter can
	// be bumped without a label lookup on the sync path.
	fsyncs *telemetry.Counter
	// batchRecords is the group-commit batch-size distribution. The
	// histogram is duration-based, so batch sizes are encoded one record per
	// second: a bucket bound of 8 means "batches of up to 8 records" and the
	// _sum is the total number of batched records.
	batchRecords *telemetry.Histogram
	// fsyncsSaved counts records that shared another record's fsync under
	// the always policy — the fsyncs the group committer avoided compared to
	// one-fsync-per-record.
	fsyncsSaved *telemetry.Counter
}

// batchSizeBuckets are record counts encoded as seconds (see
// logMetrics.batchRecords).
var batchSizeBuckets = []time.Duration{
	1 * time.Second, 2 * time.Second, 4 * time.Second, 8 * time.Second,
	16 * time.Second, 32 * time.Second, 64 * time.Second, 128 * time.Second,
	256 * time.Second, 512 * time.Second,
}

func newLogMetrics(reg *telemetry.Registry, policy SyncPolicy) *logMetrics {
	if reg == nil {
		return nil
	}
	return &logMetrics{
		fsync: reg.Histogram("cqms_wal_fsync_seconds",
			"Duration of WAL fsync calls.", nil),
		fsyncs: reg.CounterVec("cqms_wal_fsyncs_total",
			"WAL fsync calls by the sync policy the log runs under.", "policy").
			With(policy.String()),
		batchRecords: reg.Histogram("cqms_wal_group_commit_records",
			"Records per group-commit batch; sizes are encoded one record per second (le=\"8\" = batches of up to 8 records).",
			batchSizeBuckets),
		fsyncsSaved: reg.Counter("cqms_wal_fsyncs_saved_total",
			"Fsyncs avoided by group commit under the always policy: records acknowledged by another record's batch fsync."),
	}
}

// managerMetrics instruments the manager's append/snapshot/compaction paths.
type managerMetrics struct {
	append     *telemetry.Histogram
	snapshot   *telemetry.Histogram
	compaction *telemetry.Histogram
}

// enableMetrics registers the WAL families on reg: operation histograms,
// durable-state gauges computed at scrape time, and the outcome of the
// recovery that just ran. Called by Open once recovery has finished, before
// the mutation hook is installed, so the append histogram never races its
// own installation.
func (m *Manager) enableMetrics(reg *telemetry.Registry, info *RecoveryInfo, recovery time.Duration) {
	if reg == nil {
		return
	}
	m.met = &managerMetrics{
		append: reg.Histogram("cqms_wal_append_seconds",
			"Time to encode and sequence one mutation into the WAL (inside the commit lock; excludes the group-commit durability wait).", nil),
		snapshot: reg.Histogram("cqms_wal_snapshot_seconds",
			"Time to capture and write one full-store snapshot.", nil),
		compaction: reg.Histogram("cqms_wal_compaction_seconds",
			"Time of one compaction run: snapshot plus segment and snapshot pruning.", nil),
	}

	reg.GaugeFunc("cqms_wal_last_seq",
		"Sequence number of the most recently appended WAL record.",
		func() float64 { return float64(m.lastSeq.Load()) })
	reg.GaugeFunc("cqms_wal_sequence_durable_lag",
		"Mutations sequenced in the WAL but not yet covered by a completed fsync (group-commit pipeline depth).",
		func() float64 {
			lag := float64(m.lastSeq.Load()) - float64(m.log.DurableSeq())
			if lag < 0 {
				return 0
			}
			return lag
		})
	reg.GaugeFunc("cqms_wal_snapshot_seq",
		"Sequence the newest snapshot covers.",
		func() float64 { return float64(m.snapshotSeq.Load()) })
	reg.GaugeFunc("cqms_wal_appends_since_snapshot",
		"Mutations appended since the last snapshot.",
		func() float64 { return float64(m.appendsSinceSnapshot.Load()) })
	reg.GaugeFunc("cqms_wal_segments",
		"Number of on-disk WAL segments.",
		func() float64 {
			segs, err := listSegments(m.cfg.Dir)
			if err != nil {
				return -1
			}
			return float64(len(segs))
		})
	reg.GaugeFunc("cqms_wal_segment_bytes",
		"Total bytes across all on-disk WAL segments.",
		func() float64 {
			segs, err := listSegments(m.cfg.Dir)
			if err != nil {
				return -1
			}
			var total int64
			for _, s := range segs {
				total += s.Bytes
			}
			return float64(total)
		})

	// Recovery happened exactly once, in the Open that built this manager;
	// expose its outcome as constants so a scrape after restart shows what
	// the restart cost.
	recoverySeconds := recovery.Seconds()
	replayed := float64(info.Replayed)
	reg.GaugeFunc("cqms_wal_recovery_seconds",
		"Wall-clock duration of the recovery performed by the last Open.",
		func() float64 { return recoverySeconds })
	reg.GaugeFunc("cqms_wal_recovery_replayed_records",
		"Log records replayed beyond the snapshot during the last recovery.",
		func() float64 { return replayed })
	outcomes := reg.CounterVec("cqms_wal_recovery_checkpoints_total",
		"Derived-state subscribers restored from a snapshot checkpoint vs rebuilt by a full scan during the last recovery.",
		"outcome")
	outcomes.With("restored").Add(uint64(len(info.CheckpointRestored)))
	outcomes.With("rebuilt").Add(uint64(len(info.CheckpointRebuilt)))
}
