package wal

import (
	"time"

	"repro/internal/telemetry"
)

// logMetrics instruments the log's fsync path. Fields are read-only after
// OpenLog; a nil *logMetrics (uninstrumented log) costs one branch per sync.
type logMetrics struct {
	fsync *telemetry.Histogram
	// fsyncs is pre-labeled with this log's sync policy, so the counter can
	// be bumped without a label lookup on the sync path.
	fsyncs *telemetry.Counter
}

func newLogMetrics(reg *telemetry.Registry, policy SyncPolicy) *logMetrics {
	if reg == nil {
		return nil
	}
	return &logMetrics{
		fsync: reg.Histogram("cqms_wal_fsync_seconds",
			"Duration of WAL fsync calls.", nil),
		fsyncs: reg.CounterVec("cqms_wal_fsyncs_total",
			"WAL fsync calls by the sync policy the log runs under.", "policy").
			With(policy.String()),
	}
}

// managerMetrics instruments the manager's append/snapshot/compaction paths.
type managerMetrics struct {
	append     *telemetry.Histogram
	snapshot   *telemetry.Histogram
	compaction *telemetry.Histogram
}

// enableMetrics registers the WAL families on reg: operation histograms,
// durable-state gauges computed at scrape time, and the outcome of the
// recovery that just ran. Called by Open once recovery has finished, before
// the mutation hook is installed, so the append histogram never races its
// own installation.
func (m *Manager) enableMetrics(reg *telemetry.Registry, info *RecoveryInfo, recovery time.Duration) {
	if reg == nil {
		return
	}
	m.met = &managerMetrics{
		append: reg.Histogram("cqms_wal_append_seconds",
			"Time to encode-and-append one mutation to the WAL (inside the commit lock).", nil),
		snapshot: reg.Histogram("cqms_wal_snapshot_seconds",
			"Time to capture and write one full-store snapshot.", nil),
		compaction: reg.Histogram("cqms_wal_compaction_seconds",
			"Time of one compaction run: snapshot plus segment and snapshot pruning.", nil),
	}

	reg.GaugeFunc("cqms_wal_last_seq",
		"Sequence number of the most recently appended WAL record.",
		func() float64 { return float64(m.lastSeq.Load()) })
	reg.GaugeFunc("cqms_wal_snapshot_seq",
		"Sequence the newest snapshot covers.",
		func() float64 { return float64(m.snapshotSeq.Load()) })
	reg.GaugeFunc("cqms_wal_appends_since_snapshot",
		"Mutations appended since the last snapshot.",
		func() float64 { return float64(m.appendsSinceSnapshot.Load()) })
	reg.GaugeFunc("cqms_wal_segments",
		"Number of on-disk WAL segments.",
		func() float64 {
			segs, err := listSegments(m.cfg.Dir)
			if err != nil {
				return -1
			}
			return float64(len(segs))
		})
	reg.GaugeFunc("cqms_wal_segment_bytes",
		"Total bytes across all on-disk WAL segments.",
		func() float64 {
			segs, err := listSegments(m.cfg.Dir)
			if err != nil {
				return -1
			}
			var total int64
			for _, s := range segs {
				total += s.Bytes
			}
			return float64(total)
		})

	// Recovery happened exactly once, in the Open that built this manager;
	// expose its outcome as constants so a scrape after restart shows what
	// the restart cost.
	recoverySeconds := recovery.Seconds()
	replayed := float64(info.Replayed)
	reg.GaugeFunc("cqms_wal_recovery_seconds",
		"Wall-clock duration of the recovery performed by the last Open.",
		func() float64 { return recoverySeconds })
	reg.GaugeFunc("cqms_wal_recovery_replayed_records",
		"Log records replayed beyond the snapshot during the last recovery.",
		func() float64 { return replayed })
	outcomes := reg.CounterVec("cqms_wal_recovery_checkpoints_total",
		"Derived-state subscribers restored from a snapshot checkpoint vs rebuilt by a full scan during the last recovery.",
		"outcome")
	outcomes.With("restored").Add(uint64(len(info.CheckpointRestored)))
	outcomes.With("rebuilt").Add(uint64(len(info.CheckpointRebuilt)))
}
