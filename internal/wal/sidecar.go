package wal

import (
	"encoding/binary"
	"fmt"
)

// Sidecar sections let a snapshot carry serialized derived-state checkpoints
// (stats counters, the miner feed, the live session windows) next to the
// primary store state, so recovery can restore them instead of rebuilding
// from a full-log scan.
//
// On disk a snapshot file is a sequence of CRC-framed records (the same
// framing as log records, all carrying the snapshot's covered sequence):
//
//	frame 0:  the store state (exactly the pre-sidecar snapshot format)
//	frame 1+: one sidecar section each, payload =
//	          uvarint(len(name)) | name | uvarint(version) | data
//
// A legacy single-frame snapshot simply has no sidecars and loads as
// before. The reverse is a loud failure, not a quiet one: the pre-sidecar
// reader rejected any bytes after frame 0, so a rolled-back binary refuses
// a sidecar-bearing snapshot and recovery stops with the
// missing-or-corrupt-snapshot error (or replays the full WAL when the
// covered segments still exist) rather than serving a partial store.
// Because every frame is independently CRC-checked, a crash that tears the
// sidecar tail leaves the primary state loadable — recovery keeps the
// sections that read back clean and falls back to a full rebuild for the
// rest.

// SidecarSection is one named, versioned derived-state checkpoint carried by
// a snapshot.
type SidecarSection struct {
	// Name identifies the subscriber the checkpoint belongs to (the mutation
	// bus subscription name, e.g. "stats").
	Name string
	// Version is the subscriber's checkpoint format version; a subscriber
	// that does not recognise the version falls back to rebuilding.
	Version int
	// Data is the opaque serialized checkpoint.
	Data []byte
}

// SidecarInfo describes one sidecar section for the admin API without
// exposing its payload.
type SidecarInfo struct {
	Name    string
	Version int
	Bytes   int
}

// Info summarises the section.
func (s SidecarSection) Info() SidecarInfo {
	return SidecarInfo{Name: s.Name, Version: s.Version, Bytes: len(s.Data)}
}

// encodeSidecar renders a section as a frame payload.
func encodeSidecar(s SidecarSection) []byte {
	buf := make([]byte, 0, 2*binary.MaxVarintLen64+len(s.Name)+len(s.Data))
	buf = binary.AppendUvarint(buf, uint64(len(s.Name)))
	buf = append(buf, s.Name...)
	buf = binary.AppendUvarint(buf, uint64(s.Version))
	buf = append(buf, s.Data...)
	return buf
}

// decodeSidecar parses a frame payload back into a section.
func decodeSidecar(payload []byte) (SidecarSection, error) {
	nameLen, n := binary.Uvarint(payload)
	if n <= 0 || uint64(len(payload)-n) < nameLen {
		return SidecarSection{}, fmt.Errorf("wal: sidecar section: bad name length")
	}
	rest := payload[n:]
	name := string(rest[:nameLen])
	rest = rest[nameLen:]
	version, n := binary.Uvarint(rest)
	if n <= 0 {
		return SidecarSection{}, fmt.Errorf("wal: sidecar section %q: bad version", name)
	}
	return SidecarSection{Name: name, Version: int(version), Data: rest[n:]}, nil
}
