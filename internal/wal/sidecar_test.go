package wal

import (
	"bytes"
	"os"
	"testing"
)

func testSidecars() []SidecarSection {
	return []SidecarSection{
		{Name: "stats", Version: 1, Data: []byte(`{"queries":42}`)},
		{Name: "miner-feed", Version: 3, Data: []byte(`{"numTx":7}`)},
		{Name: "sessions", Version: 1, Data: bytes.Repeat([]byte{0xAB}, 512)},
	}
}

func TestSnapshotSidecarRoundTrip(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"records":[]}`)
	if _, err := WriteSnapshotWithSidecars(dir, 99, payload, testSidecars()); err != nil {
		t.Fatal(err)
	}
	seq, got, sidecars, ok, err := LatestSnapshotWithSidecars(dir)
	if err != nil || !ok {
		t.Fatalf("LatestSnapshotWithSidecars: ok=%v err=%v", ok, err)
	}
	if seq != 99 || !bytes.Equal(got, payload) {
		t.Fatalf("primary frame = (%d, %q), want (99, %q)", seq, got, payload)
	}
	want := testSidecars()
	if len(sidecars) != len(want) {
		t.Fatalf("sidecars = %d, want %d", len(sidecars), len(want))
	}
	for i, sc := range sidecars {
		if sc.Name != want[i].Name || sc.Version != want[i].Version || !bytes.Equal(sc.Data, want[i].Data) {
			t.Errorf("sidecar %d = %+v, want %+v", i, sc.Info(), want[i].Info())
		}
	}
}

// TestSnapshotLegacyFormat proves a pre-sidecar snapshot (a single frame)
// still loads, with no sidecars.
func TestSnapshotLegacyFormat(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, 7, []byte("state")); err != nil {
		t.Fatal(err)
	}
	seq, payload, sidecars, ok, err := LatestSnapshotWithSidecars(dir)
	if err != nil || !ok || seq != 7 || string(payload) != "state" {
		t.Fatalf("legacy snapshot: seq=%d payload=%q ok=%v err=%v", seq, payload, ok, err)
	}
	if len(sidecars) != 0 {
		t.Fatalf("legacy snapshot decoded %d sidecars", len(sidecars))
	}
	// And the sidecar-oblivious reader still works on a sidecar snapshot.
	if _, err := WriteSnapshotWithSidecars(dir, 9, []byte("newer"), testSidecars()); err != nil {
		t.Fatal(err)
	}
	seq, payload, ok, err = LatestSnapshot(dir)
	if err != nil || !ok || seq != 9 || string(payload) != "newer" {
		t.Fatalf("LatestSnapshot over sidecar file: seq=%d payload=%q ok=%v err=%v", seq, payload, ok, err)
	}
}

// TestSnapshotSidecarTornTail is the crash fixture: a snapshot with sidecars
// truncated at every possible length. The primary state must load whenever
// its frame is intact — a torn sidecar tail costs only the torn sections —
// and a truncation inside the primary frame must not produce a bogus load.
func TestSnapshotSidecarTornTail(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`{"records":["the","primary","state"]}`)
	path, err := WriteSnapshotWithSidecars(dir, 5, payload, testSidecars())
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	primaryLen := len(encodeFrame(5, payload))
	for cut := len(full) - 1; cut >= 0; cut-- {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		seq, got, sidecars, ok, err := LatestSnapshotWithSidecars(dir)
		if err != nil {
			t.Fatalf("cut=%d: unexpected error %v", cut, err)
		}
		if cut < primaryLen {
			if ok {
				t.Fatalf("cut=%d (inside primary frame): snapshot loaded", cut)
			}
			continue
		}
		if !ok || seq != 5 || !bytes.Equal(got, payload) {
			t.Fatalf("cut=%d: primary state lost (ok=%v seq=%d)", cut, ok, seq)
		}
		if len(sidecars) > len(testSidecars()) {
			t.Fatalf("cut=%d: %d sidecars from a torn file", cut, len(sidecars))
		}
		for i, sc := range sidecars {
			want := testSidecars()[i]
			if sc.Name != want.Name || sc.Version != want.Version || !bytes.Equal(sc.Data, want.Data) {
				t.Fatalf("cut=%d: sidecar %d corrupted: %+v", cut, i, sc.Info())
			}
		}
	}
}

// TestSnapshotSidecarCorruption flips one byte inside the middle sidecar:
// the CRC must reject it and reading stops there, keeping the sections
// before the damage.
func TestSnapshotSidecarCorruption(t *testing.T) {
	dir := t.TempDir()
	payload := []byte("primary")
	path, err := WriteSnapshotWithSidecars(dir, 3, payload, testSidecars())
	if err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	primaryLen := len(encodeFrame(3, payload))
	firstLen := len(encodeFrame(3, encodeSidecar(testSidecars()[0])))
	corrupt := append([]byte(nil), full...)
	corrupt[primaryLen+firstLen+8] ^= 0xFF // inside the second sidecar frame
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, got, sidecars, ok, err := LatestSnapshotWithSidecars(dir)
	if err != nil || !ok || seq != 3 || !bytes.Equal(got, payload) {
		t.Fatalf("primary state lost after sidecar corruption: ok=%v err=%v", ok, err)
	}
	if len(sidecars) != 1 || sidecars[0].Name != "stats" {
		t.Fatalf("sidecars after corruption = %+v, want just stats", sidecars)
	}
}

// TestLatestSnapshotSkipsCorruptPrimary proves a snapshot whose primary
// frame is damaged is skipped in favour of the next older snapshot, sidecars
// included.
func TestLatestSnapshotSkipsCorruptPrimary(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshotWithSidecars(dir, 10, []byte("older"), testSidecars()[:1]); err != nil {
		t.Fatal(err)
	}
	newer, err := WriteSnapshotWithSidecars(dir, 20, []byte("newer"), testSidecars())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(newer)
	if err != nil {
		t.Fatal(err)
	}
	raw[10] ^= 0xFF
	if err := os.WriteFile(newer, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, payload, sidecars, ok, err := LatestSnapshotWithSidecars(dir)
	if err != nil || !ok {
		t.Fatalf("fallback failed: ok=%v err=%v", ok, err)
	}
	if seq != 10 || string(payload) != "older" || len(sidecars) != 1 {
		t.Fatalf("fallback = (%d, %q, %d sidecars), want (10, older, 1)", seq, payload, len(sidecars))
	}
}
