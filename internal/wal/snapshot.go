package wal

import (
	"bufio"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// A snapshot file holds one CRC-framed record (the same framing as log
// records) whose sequence is the last log sequence the snapshot covers and
// whose payload is the serialised store state, optionally followed by
// CRC-framed sidecar sections carrying derived-state checkpoints (see
// sidecar.go). Snapshots are written to a temporary file and renamed into
// place so a crash mid-snapshot leaves the previous snapshot intact.

func snapshotName(seq uint64) string {
	return seqFileName(snapshotPrefix, seq, snapshotSuffix)
}

func parseSnapshotName(name string) (uint64, bool) {
	return parseSeqFileName(name, snapshotPrefix, snapshotSuffix)
}

// WriteSnapshot durably writes a snapshot covering all log records with
// sequence <= seq and returns its path.
func WriteSnapshot(dir string, seq uint64, payload []byte) (string, error) {
	return WriteSnapshotWithSidecars(dir, seq, payload, nil)
}

// WriteSnapshotWithSidecars durably writes a snapshot covering all log
// records with sequence <= seq, followed by one CRC-framed sidecar section
// per entry of sidecars, and returns its path. This package's readers load
// the primary state from the first frame regardless of what follows it (see
// sidecar.go for the cross-version story).
func WriteSnapshotWithSidecars(dir string, seq uint64, payload []byte, sidecars []SidecarSection) (string, error) {
	path := filepath.Join(dir, snapshotName(seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", fmt.Errorf("wal: writing snapshot: %w", err)
	}
	_, werr := f.Write(encodeFrame(seq, payload))
	for _, sc := range sidecars {
		if werr != nil {
			break
		}
		_, werr = f.Write(encodeFrame(seq, encodeSidecar(sc)))
	}
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("wal: writing snapshot: %w", werr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", fmt.Errorf("wal: writing snapshot: %w", err)
	}
	syncDir(dir)
	return path, nil
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// LatestSnapshot loads the newest readable snapshot in dir, discarding any
// sidecar sections. It returns ok=false when no usable snapshot exists; a
// snapshot whose primary frame fails its CRC check is skipped in favour of
// the next older one.
func LatestSnapshot(dir string) (seq uint64, payload []byte, ok bool, err error) {
	seq, payload, _, ok, err = LatestSnapshotWithSidecars(dir)
	return seq, payload, ok, err
}

// LatestSnapshotWithSidecars loads the newest readable snapshot in dir along
// with every sidecar section that reads back clean. A torn or corrupt
// sidecar tail does not invalidate the snapshot: the primary state and the
// sections before the damage are returned, and derived state whose section
// was lost falls back to a full rebuild.
func LatestSnapshotWithSidecars(dir string) (seq uint64, payload []byte, sidecars []SidecarSection, ok bool, err error) {
	names, err := listSnapshots(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil, nil, false, nil
		}
		return 0, nil, nil, false, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		seq, payload, sidecars, err := readSnapshot(filepath.Join(dir, names[i]))
		if err == nil {
			return seq, payload, sidecars, true, nil
		}
	}
	return 0, nil, nil, false, nil
}

func readSnapshot(path string) (uint64, []byte, []SidecarSection, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	seq, payload, _, err := readFrame(r)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("wal: reading snapshot %s: %w", filepath.Base(path), err)
	}
	// Every further frame is one sidecar section, CRC-checked independently
	// and carrying the same sequence. The first unreadable or foreign frame
	// ends the file: a torn tail costs only the sections at and after the
	// tear, never the primary state.
	var sidecars []SidecarSection
	for {
		scSeq, scPayload, _, err := readFrame(r)
		if err != nil {
			break
		}
		if scSeq != seq {
			break
		}
		sc, err := decodeSidecar(scPayload)
		if err != nil {
			break
		}
		sidecars = append(sidecars, sc)
	}
	return seq, payload, sidecars, nil
}

// RemoveSnapshotsBefore deletes snapshots older than seq, returning how many
// were removed.
func RemoveSnapshotsBefore(dir string, seq uint64) (int, error) {
	names, err := listSnapshots(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for _, name := range names {
		s, _ := parseSnapshotName(name)
		if s >= seq {
			continue
		}
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			return removed, fmt.Errorf("wal: pruning snapshots: %w", err)
		}
		removed++
	}
	return removed, nil
}

// listSnapshots returns snapshot file names sorted by ascending sequence.
func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if _, ok := parseSnapshotName(e.Name()); ok {
			out = append(out, e.Name())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, _ := parseSnapshotName(out[i])
		b, _ := parseSnapshotName(out[j])
		return a < b
	})
	return out, nil
}
