package wal

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Replication streaming: the primary serves its log tail and newest snapshot
// as raw CRC frames (exactly the on-disk framing, see appendFrame), so a
// follower can bootstrap from the snapshot and then pull records with
// sequence > its applied cursor. The sequence number is the resume cursor:
// a response's last frame sequence is passed back verbatim as the next
// request's `after`, mirroring the v1 pagination contract's opaque-cursor
// round-trip.

// ErrCompacted reports that records at the requested cursor have been
// compacted away; the caller must re-bootstrap from a newer snapshot.
var ErrCompacted = errors.New("wal: records at cursor compacted away; bootstrap from a newer snapshot")

// errTailFull ends a ReadTail segment walk once the byte budget is spent.
var errTailFull = errors.New("wal: tail budget exhausted")

// ReadTail writes every record with sequence > after, in order, to w as CRC
// frames, stopping after the record that crosses maxBytes (so at least one
// record is always sent when any is available; frames are never split). It
// returns the last sequence written and the number of records. A torn tail
// in the newest segment ends the read cleanly, like Replay. If the records
// just past the cursor have been compacted away it returns ErrCompacted.
// Like Replay, pending appends are drained first and the I/O lock is held
// for the duration, so keep maxBytes bounded.
func (l *Log) ReadTail(after uint64, maxBytes int64, w io.Writer) (last uint64, records int, err error) {
	if err := l.waitWritten(); err != nil {
		return 0, 0, err
	}
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0, 0, err
	}
	if len(segs) > 0 && segs[0].FirstSeq > after+1 {
		return 0, 0, ErrCompacted
	}
	var (
		sent int64
		buf  []byte
	)
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].FirstSeq-1 <= after {
			continue // every record here is at or before the cursor
		}
		isNewest := i == len(segs)-1
		err := readSegment(filepath.Join(l.dir, seg.Name), func(seq uint64, payload []byte) error {
			if seq <= after {
				return nil
			}
			buf = appendFrame(buf[:0], seq, payload)
			if _, err := w.Write(buf); err != nil {
				return err
			}
			last, records = seq, records+1
			if sent += int64(len(buf)); sent >= maxBytes {
				return errTailFull
			}
			return nil
		})
		if errors.Is(err, errTailFull) {
			return last, records, nil
		}
		if errors.Is(err, errTorn) {
			if isNewest {
				return last, records, nil
			}
			return last, records, fmt.Errorf("wal: segment %s: %w", seg.Name, err)
		}
		if err != nil {
			return last, records, err
		}
	}
	return last, records, nil
}

// ReadFrames decodes a stream of CRC frames (a ReadTail response body) and
// hands each record to fn in order. A clean EOF ends the stream; a partial
// or corrupt frame is an error — over the network there is no torn-tail
// tolerance, a damaged stream must be refetched.
func ReadFrames(r io.Reader, fn func(seq uint64, payload []byte) error) error {
	br := bufio.NewReaderSize(r, 64<<10)
	for {
		seq, payload, _, err := readFrame(br)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("wal: replication stream: %w", err)
		}
		if err := fn(seq, payload); err != nil {
			return err
		}
	}
}

// DecodeSnapshot parses a streamed snapshot document (the raw bytes of a
// snapshot file: one store-state frame plus zero or more sidecar frames, all
// carrying the covered sequence). Unlike the on-disk reader it is strict: a
// torn or foreign frame anywhere is an error, because a network transfer
// that tears mid-body must be retried, not partially applied.
func DecodeSnapshot(r io.Reader) (seq uint64, payload []byte, sidecars []SidecarSection, err error) {
	br := bufio.NewReaderSize(r, 1<<20)
	seq, payload, _, err = readFrame(br)
	if err != nil {
		return 0, nil, nil, fmt.Errorf("wal: replication snapshot: %w", err)
	}
	for {
		scSeq, scPayload, _, err := readFrame(br)
		if err == io.EOF {
			return seq, payload, sidecars, nil
		}
		if err != nil {
			return 0, nil, nil, fmt.Errorf("wal: replication snapshot sidecar: %w", err)
		}
		if scSeq != seq {
			return 0, nil, nil, fmt.Errorf("wal: replication snapshot sidecar: sequence %d != %d", scSeq, seq)
		}
		sc, err := decodeSidecar(scPayload)
		if err != nil {
			return 0, nil, nil, err
		}
		sidecars = append(sidecars, sc)
	}
}

// LastSeq returns the highest WAL sequence assigned to an appended mutation.
func (m *Manager) LastSeq() uint64 { return m.lastSeq.Load() }

// SnapshotSeq returns the log sequence covered by the newest snapshot taken
// by this manager (0 before the first snapshot).
func (m *Manager) SnapshotSeq() uint64 { return m.snapshotSeq.Load() }

// ReadTail streams CRC-framed records with sequence > after to w; see
// Log.ReadTail for the contract.
func (m *Manager) ReadTail(after uint64, maxBytes int64, w io.Writer) (uint64, int, error) {
	return m.log.ReadTail(after, maxBytes, w)
}

// OpenLatestSnapshot opens the newest snapshot document for streaming; see
// the package OpenLatestSnapshot function for the contract.
func (m *Manager) OpenLatestSnapshot() (io.ReadCloser, uint64, bool, error) {
	return OpenLatestSnapshot(m.cfg.Dir)
}

// OpenLatestSnapshot opens the newest readable snapshot's raw bytes and
// returns the log sequence it covers, so a caller can announce the sequence
// before streaming the body. ok is false when no snapshot exists yet (the
// follower then replays the whole log from sequence 0). A snapshot that fails
// validation is skipped in favour of the next older one, matching
// LatestSnapshotWithSidecars; the returned handle stays readable even if
// compaction unlinks the file mid-transfer.
func OpenLatestSnapshot(dir string) (r io.ReadCloser, seq uint64, ok bool, err error) {
	names, err := listSnapshots(dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, 0, false, nil
		}
		return nil, 0, false, err
	}
	for i := len(names) - 1; i >= 0; i-- {
		path := filepath.Join(dir, names[i])
		seq, _, _, err := readSnapshot(path)
		if err != nil {
			continue // corrupt snapshot: fall back to an older one
		}
		f, err := os.Open(path)
		if err != nil {
			continue // compacted away between listing and open
		}
		return f, seq, true, nil
	}
	return nil, 0, false, nil
}
