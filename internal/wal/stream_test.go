package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"
)

// streamTestLog opens a log in a temp dir and appends n small payloads.
func streamTestLog(t *testing.T, n int) *Log {
	t.Helper()
	l, err := OpenLog(Options{Dir: t.TempDir(), Sync: SyncOff, SegmentBytes: 256})
	if err != nil {
		t.Fatalf("OpenLog: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	for i := 1; i <= n; i++ {
		if _, err := l.Append(fmt.Appendf(nil, "record-%04d", i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	return l
}

// TestReadTailRoundTrip streams a tail over ReadTail, decodes it with
// ReadFrames (the follower's path) and checks every record past the cursor
// comes back once, in order, byte-identical.
func TestReadTailRoundTrip(t *testing.T) {
	const n, after = 50, 17
	l := streamTestLog(t, n)
	var buf bytes.Buffer
	last, records, err := l.ReadTail(after, 1<<20, &buf)
	if err != nil {
		t.Fatalf("ReadTail: %v", err)
	}
	if last != n || records != n-after {
		t.Fatalf("ReadTail = (last %d, records %d), want (%d, %d)", last, records, n, n-after)
	}
	want := uint64(after + 1)
	if err := ReadFrames(&buf, func(seq uint64, payload []byte) error {
		if seq != want {
			return fmt.Errorf("got seq %d, want %d", seq, want)
		}
		if got := string(payload); got != fmt.Sprintf("record-%04d", seq) {
			return fmt.Errorf("seq %d payload = %q", seq, got)
		}
		want++
		return nil
	}); err != nil {
		t.Fatalf("ReadFrames: %v", err)
	}
	if want != n+1 {
		t.Fatalf("decoded up to %d, want %d", want-1, n+1)
	}
}

// TestReadTailBudget: the byte budget stops the stream after the record that
// crosses it, and the cursor-resume contract still drains everything.
func TestReadTailBudget(t *testing.T) {
	const n = 40
	l := streamTestLog(t, n)
	var got []uint64
	after := uint64(0)
	for i := 0; ; i++ {
		var buf bytes.Buffer
		last, records, err := l.ReadTail(after, 64, &buf) // a few frames per call
		if err != nil {
			t.Fatalf("ReadTail(after=%d): %v", after, err)
		}
		if records == 0 {
			break
		}
		if err := ReadFrames(&buf, func(seq uint64, _ []byte) error {
			got = append(got, seq)
			return nil
		}); err != nil {
			t.Fatalf("ReadFrames: %v", err)
		}
		after = last
		if i > n {
			t.Fatal("budgeted tail never drained")
		}
	}
	if len(got) != n {
		t.Fatalf("drained %d records, want %d", len(got), n)
	}
	for i, seq := range got {
		if seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, seq)
		}
	}
}

// TestReadTailCompacted: a cursor before the oldest retained segment reports
// ErrCompacted instead of silently skipping records.
func TestReadTailCompacted(t *testing.T) {
	l := streamTestLog(t, 60)
	if _, err := l.RemoveSegmentsCoveredBy(40); err != nil {
		t.Fatalf("RemoveSegmentsCoveredBy: %v", err)
	}
	segs, err := l.Segments()
	if err != nil || len(segs) == 0 {
		t.Fatalf("Segments: %v (%d)", err, len(segs))
	}
	first := segs[0].FirstSeq
	if first <= 1 {
		t.Skip("compaction retained everything; nothing to assert")
	}
	if _, _, err := l.ReadTail(0, 1<<20, io.Discard); !errors.Is(err, ErrCompacted) {
		t.Fatalf("ReadTail(0) err = %v, want ErrCompacted", err)
	}
	// Exactly at the boundary the tail is still serveable.
	if _, _, err := l.ReadTail(first-1, 1<<20, io.Discard); err != nil {
		t.Fatalf("ReadTail(%d) err = %v", first-1, err)
	}
}

// TestReadFramesStrict: a truncated network body is an error, never a clean
// end — the follower must refetch, not partially apply.
func TestReadFramesStrict(t *testing.T) {
	l := streamTestLog(t, 5)
	var buf bytes.Buffer
	if _, _, err := l.ReadTail(0, 1<<20, &buf); err != nil {
		t.Fatalf("ReadTail: %v", err)
	}
	torn := buf.Bytes()[:buf.Len()-3]
	err := ReadFrames(bytes.NewReader(torn), func(uint64, []byte) error { return nil })
	if err == nil {
		t.Fatal("ReadFrames on a torn body should fail")
	}
}

// TestSnapshotStreamRoundTrip: OpenLatestSnapshot + DecodeSnapshot recover
// the state payload and sidecars WriteSnapshotWithSidecars stored.
func TestSnapshotStreamRoundTrip(t *testing.T) {
	dir := t.TempDir()

	if _, _, _, err := OpenLatestSnapshot(dir); err != nil {
		t.Fatalf("OpenLatestSnapshot(empty): %v", err)
	}
	if r, _, ok, _ := OpenLatestSnapshot(dir); ok || r != nil {
		t.Fatal("empty dir should report no snapshot")
	}

	state := []byte(`{"fake":"store-state"}`)
	sidecars := []SidecarSection{
		{Name: "stats", Version: 2, Data: []byte("stats-checkpoint")},
		{Name: "sessions", Version: 1, Data: []byte("sessions-checkpoint")},
	}
	if _, err := WriteSnapshotWithSidecars(dir, 41, []byte("old"), nil); err != nil {
		t.Fatalf("WriteSnapshotWithSidecars: %v", err)
	}
	if _, err := WriteSnapshotWithSidecars(dir, 42, state, sidecars); err != nil {
		t.Fatalf("WriteSnapshotWithSidecars: %v", err)
	}

	r, seq, ok, err := OpenLatestSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("OpenLatestSnapshot = ok %v, err %v", ok, err)
	}
	defer r.Close()
	if seq != 42 {
		t.Fatalf("snapshot seq = %d, want 42", seq)
	}
	dseq, payload, dsc, err := DecodeSnapshot(r)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if dseq != 42 || !bytes.Equal(payload, state) {
		t.Fatalf("decoded (seq %d, %q), want (42, %q)", dseq, payload, state)
	}
	if len(dsc) != len(sidecars) {
		t.Fatalf("decoded %d sidecars, want %d", len(dsc), len(sidecars))
	}
	for i, sc := range dsc {
		if sc.Name != sidecars[i].Name || sc.Version != sidecars[i].Version || !bytes.Equal(sc.Data, sidecars[i].Data) {
			t.Fatalf("sidecar %d = %+v, want %+v", i, sc, sidecars[i])
		}
	}
}

// TestDecodeSnapshotStrict: a torn snapshot transfer is an error even where
// the on-disk reader would tolerate it (lenient sidecar tail).
func TestDecodeSnapshotStrict(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshotWithSidecars(dir, 7, []byte("state"),
		[]SidecarSection{{Name: "stats", Version: 1, Data: []byte("ck")}}); err != nil {
		t.Fatalf("WriteSnapshotWithSidecars: %v", err)
	}
	r, _, _, err := OpenLatestSnapshot(dir)
	if err != nil {
		t.Fatalf("OpenLatestSnapshot: %v", err)
	}
	raw, err := io.ReadAll(r)
	r.Close()
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if _, _, _, err := DecodeSnapshot(bytes.NewReader(raw[:len(raw)-2])); err == nil {
		t.Fatal("DecodeSnapshot on a torn body should fail")
	}
	if _, _, _, err := DecodeSnapshot(strings.NewReader("")); err == nil {
		t.Fatal("DecodeSnapshot on an empty body should fail")
	}
}
