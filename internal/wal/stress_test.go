package wal

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/storage"
)

// TestConcurrentCommitOrder hammers the full durable commit path — group
// commit, pipelined appends, parallel batch indexing — with concurrent
// Put/PutBatch/Delete callers and asserts the one invariant everything
// downstream depends on: every bus subscriber sees mutations in strict WAL
// sequence order, one total order with no gaps and no reordering. The
// subscriber deliberately shares state without its own lock; under -race
// that also proves bus fan-out is still serialized by the commit lock.
func TestConcurrentCommitOrder(t *testing.T) {
	store := storage.NewStore()
	cfg := DefaultConfig(t.TempDir())
	cfg.SyncPolicy = "always"
	mgr, _, err := Open(store, cfg)
	if err != nil {
		t.Fatal(err)
	}

	var last uint64
	var total int
	store.Subscribe("order", func(m *storage.Mutation) {
		seq := m.WALSeq()
		if seq != last+1 {
			t.Errorf("subscriber saw WAL seq %d after %d; want strict +1 order", seq, last)
		}
		last = seq
		total++
	}, storage.SubscribeOptions{})

	newRec := func(g, i int) *storage.QueryRecord {
		rec, err := storage.NewRecordFromSQL(
			fmt.Sprintf("SELECT temp FROM WaterTemp WHERE temp < %d", g*10000+i))
		if err != nil {
			panic(err)
		}
		rec.User = fmt.Sprintf("user-%d", g)
		return rec
	}

	const (
		putters   = 3
		putsEach  = 40
		batchers  = 2
		batches   = 8
		batchSize = 10
		deleters  = 2
		delsEach  = 20
	)
	var wg sync.WaitGroup
	for g := 0; g < putters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < putsEach; i++ {
				store.Put(newRec(g, i))
			}
		}(g)
	}
	for g := 0; g < batchers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for b := 0; b < batches; b++ {
				recs := make([]*storage.QueryRecord, batchSize)
				for i := range recs {
					recs[i] = newRec(100+g, b*batchSize+i)
				}
				store.PutBatch(recs)
			}
		}(g)
	}
	for g := 0; g < deleters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := storage.Principal{User: fmt.Sprintf("user-%d", 200+g)}
			for i := 0; i < delsEach; i++ {
				rec := newRec(200+g, i)
				id := store.Put(rec)
				if err := store.Delete(id, p); err != nil {
					t.Errorf("delete %d: %v", id, err)
				}
			}
		}(g)
	}
	wg.Wait()

	wantMutations := putters*putsEach + batchers*batches*batchSize + deleters*delsEach*2
	if total != wantMutations {
		t.Errorf("subscriber saw %d mutations, want %d", total, wantMutations)
	}
	if last != uint64(wantMutations) {
		t.Errorf("last WAL seq = %d, want %d", last, wantMutations)
	}
	wantLive := putters*putsEach + batchers*batches*batchSize
	if n := store.Count(); n != wantLive {
		t.Errorf("store holds %d records, want %d", n, wantLive)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay must reproduce the same total order the subscriber saw.
	store2 := storage.NewStore()
	mgr2, rec, err := Open(store2, DefaultConfig(cfg.Dir))
	if err != nil {
		t.Fatal(err)
	}
	if rec == nil || rec.Replayed != wantMutations {
		t.Errorf("recovery = %+v, want %d replayed mutations", rec, wantMutations)
	}
	if n := store2.Count(); n != wantLive {
		t.Errorf("recovered store holds %d records, want %d", n, wantLive)
	}
	if err := mgr2.Close(); err != nil {
		t.Fatal(err)
	}
}
