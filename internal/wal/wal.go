// Package wal implements durable persistence for the CQMS query log: a
// segmented append-only write-ahead log of storage mutations plus periodic
// full-store snapshots. The paper treats the query log as a long-lived,
// community-owned asset that "grows over time"; this package is what lets it
// survive a process crash or restart without losing a single logged query.
//
// Layout of a data directory:
//
//	wal-00000000000000000001.seg   log segment, named by its first sequence
//	wal-00000000000000004096.seg
//	snapshot-00000000000003000.snap  full store state as of sequence 3000
//
// Every log record is framed as
//
//	uint32 payload length | uint32 CRC32(seq,payload) | uint64 seq | payload
//
// (little-endian). On open, a torn tail — a partially written final record
// left by a crash — is detected by the length/CRC check and truncated, so
// recovery always resumes from the last fully durable record. Recovery loads
// the newest valid snapshot and replays only the log records with sequence
// numbers beyond it; compaction deletes segments and snapshots made obsolete
// by a newer snapshot.
//
// # Group commit
//
// The append path is split into sequence → write → durability stages.
// AppendAsync assigns a sequence and encodes the frame into a pending buffer
// under a short mutex; a single committer goroutine drains the buffer,
// writes every pending frame with one file write and — under SyncAlways —
// one fsync, then wakes every waiter at once. Concurrent appenders therefore
// share fsyncs instead of serialising on them, with the acknowledgement
// guarantee unchanged: WaitDurable does not return under SyncAlways until
// the batch fsync covering the record has completed.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// SyncPolicy controls when appended records are fsynced to stable storage.
type SyncPolicy int

// Sync policies.
const (
	// SyncInterval fsyncs from a background flusher every Options.SyncInterval.
	// A crash can lose at most the last interval of appends.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs before acknowledging an append. No acknowledged
	// record is ever lost; concurrent appends share one group-commit fsync.
	SyncAlways
	// SyncOff never fsyncs explicitly; the OS flushes on its own schedule.
	SyncOff
)

// String returns the configuration spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "interval"
	}
}

// ParseSyncPolicy parses "always", "interval" or "off".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "off", "never":
		return SyncOff, nil
	default:
		return SyncInterval, fmt.Errorf("wal: unknown sync policy %q (want always, interval or off)", s)
	}
}

// Defaults for Options.
const (
	DefaultSegmentBytes = 8 << 20 // rotate segments at 8 MiB
	DefaultSyncInterval = 200 * time.Millisecond
)

// Options configures a Log.
type Options struct {
	// Dir is the data directory holding segments and snapshots.
	Dir string
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// SyncInterval is the background flush period under SyncInterval.
	SyncInterval time.Duration
	// SegmentBytes is the size threshold at which the active segment is
	// rotated.
	SegmentBytes int64
	// GroupWindow, when positive, makes the committer wait this long after
	// noticing pending appends before it writes and fsyncs, letting more
	// concurrent appenders pile onto the same batch. Zero (the default) adds
	// no latency: batching still happens naturally while a previous fsync is
	// in flight.
	GroupWindow time.Duration
	// Metrics, when set, receives the log's fsync instruments.
	Metrics *telemetry.Registry
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = DefaultSegmentBytes
	}
	if out.SyncInterval <= 0 {
		out.SyncInterval = DefaultSyncInterval
	}
	return out
}

// SegmentInfo describes one on-disk log segment.
type SegmentInfo struct {
	Name     string
	FirstSeq uint64
	Bytes    int64
}

// Log is a segmented append-only record log. It is safe for concurrent use.
//
// Two mutexes split the append path: seqMu guards sequencing (cheap, held
// for nanoseconds per append) and ioMu guards the active segment file (held
// across writes and fsyncs, almost always by the committer goroutine alone).
// Neither is ever taken while holding the other.
type Log struct {
	dir  string
	opts Options
	met  *logMetrics

	// seqMu guards the sequencing state below. wake signals the committer
	// that there is work; progress is broadcast to WaitDurable/Sync waiters
	// after every committer iteration.
	seqMu    sync.Mutex
	wake     sync.Cond
	progress sync.Cond
	// pending holds the encoded frames sequenced but not yet handed to the
	// OS; spare is the drained buffer from the previous batch, swapped back
	// in so steady-state appends reuse two long-lived buffers.
	pending       []byte
	pendingN      int
	pendingFirst  uint64 // sequence of the first pending frame
	spare         []byte
	lastSeq       uint64 // last sequenced record (0 when the log is empty)
	writtenSeq    uint64 // last record handed to the OS file
	durableSeq    uint64 // last record covered by a completed fsync
	syncTarget    uint64 // Sync() barrier: fsync up to here regardless of policy
	closed        bool
	committerDone bool
	ioErr         error // first committer write/fsync failure; appends refuse after it
	bgErr         error // first background-flush failure
	truncated     bool  // a torn tail was cut during open

	// ioMu guards the active segment file.
	ioMu        sync.Mutex
	file        *os.File
	segStart    uint64 // first sequence of the active segment
	segBytes    int64
	syncedBytes int64 // bytes of the active segment covered by an fsync
	dirty       bool  // writes not yet fsynced

	// beforeSync, when set (crash-consistency tests only), runs between the
	// committer's batch write and its fsync — the window a real crash would
	// tear. Guarded by seqMu; the committer snapshots it per iteration.
	beforeSync func()

	stopFlush  chan struct{}
	flushDone  chan struct{}
	commitDone chan struct{}
}

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".seg"
	snapshotPrefix = "snapshot-"
	snapshotSuffix = ".snap"
	headerBytes    = 16 // uint32 len + uint32 crc + uint64 seq
	// maxPayloadBytes bounds a single record so a corrupt length field cannot
	// trigger a giant allocation during recovery.
	maxPayloadBytes = 256 << 20
)

// errTorn marks a partial or corrupt record at the end of a segment.
var errTorn = errors.New("wal: torn record")

// seqFileName and parseSeqFileName implement the shared <prefix><seq 20
// digits><suffix> naming of segments and snapshots.
func seqFileName(prefix string, seq uint64, suffix string) string {
	return fmt.Sprintf("%s%020d%s", prefix, seq, suffix)
}

func parseSeqFileName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	var seq uint64
	digits := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if _, err := fmt.Sscanf(digits, "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

func segmentName(firstSeq uint64) string {
	return seqFileName(segmentPrefix, firstSeq, segmentSuffix)
}

func parseSegmentName(name string) (uint64, bool) {
	return parseSeqFileName(name, segmentPrefix, segmentSuffix)
}

// OpenLog opens (or creates) the segmented log in opts.Dir, truncating any
// torn tail left in the newest segment by a crash, and starts the group
// committer.
func OpenLog(opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("wal: open: empty directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{dir: opts.Dir, opts: opts, met: newLogMetrics(opts.Metrics, opts.Sync)}
	l.wake.L = &l.seqMu
	l.progress.L = &l.seqMu
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		path := filepath.Join(opts.Dir, last.Name)
		validBytes, lastSeq, torn, err := scanSegment(path)
		if err != nil {
			return nil, err
		}
		if torn {
			if err := os.Truncate(path, validBytes); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", last.Name, err)
			}
			l.truncated = true
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open: %w", err)
		}
		l.file = f
		l.segStart = last.FirstSeq
		l.segBytes = validBytes
		l.syncedBytes = validBytes
		if lastSeq > 0 {
			l.lastSeq = lastSeq
		} else {
			// The newest segment holds no valid records: the log ends just
			// before the sequence the segment was named for.
			l.lastSeq = last.FirstSeq - 1
		}
	}
	l.writtenSeq = l.lastSeq
	l.durableSeq = l.lastSeq
	l.commitDone = make(chan struct{})
	go l.commitLoop()
	if opts.Sync == SyncInterval {
		l.stopFlush = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

func (l *Log) openSegment(firstSeq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(firstSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	// Persist the directory entry: without this a crash could lose the whole
	// segment file even though its records were fsynced.
	syncDir(l.dir)
	l.file = f
	l.segStart = firstSeq
	l.segBytes = 0
	l.syncedBytes = 0
	l.dirty = false
	return nil
}

func (l *Log) flushLoop() {
	defer close(l.flushDone)
	ticker := time.NewTicker(l.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stopFlush:
			return
		case <-ticker.C:
			if err := l.Sync(); err != nil {
				l.seqMu.Lock()
				if l.bgErr == nil {
					l.bgErr = err
				}
				l.seqMu.Unlock()
			}
		}
	}
}

// Err returns the first committer or background-flush failure, if any.
// Appends under the interval policy are acknowledged before they reach disk,
// so a failing flusher must be surfaced out of band.
func (l *Log) Err() error {
	l.seqMu.Lock()
	defer l.seqMu.Unlock()
	if l.ioErr != nil {
		return l.ioErr
	}
	return l.bgErr
}

// AppendAsync sequences one record: it assigns the next sequence number,
// encodes the frame into the pending batch and returns without waiting for
// the write or fsync. Pair it with WaitDurable(seq) — or use Append — to get
// the policy's durability guarantee. The payload is copied; the caller may
// reuse it immediately.
func (l *Log) AppendAsync(payload []byte) (uint64, error) {
	l.seqMu.Lock()
	if l.closed {
		l.seqMu.Unlock()
		return 0, errors.New("wal: append on closed log")
	}
	if l.ioErr != nil {
		err := l.ioErr
		l.seqMu.Unlock()
		return 0, err
	}
	seq := l.lastSeq + 1
	l.lastSeq = seq
	if l.pendingN == 0 {
		l.pendingFirst = seq
	}
	l.pending = appendFrame(l.pending, seq, payload)
	l.pendingN++
	l.wake.Signal()
	l.seqMu.Unlock()
	return seq, nil
}

// WaitDurable blocks until the record with the given sequence has the
// durability its policy promises: under SyncAlways that is a completed fsync
// covering it (shared with every other record in its group-commit batch);
// under SyncInterval and SyncOff appends are acknowledged before they reach
// disk, so WaitDurable returns immediately. A zero seq is a no-op.
func (l *Log) WaitDurable(seq uint64) error {
	if seq == 0 {
		return nil
	}
	l.seqMu.Lock()
	defer l.seqMu.Unlock()
	if l.opts.Sync == SyncAlways {
		for l.durableSeq < seq && l.ioErr == nil && !l.committerDone {
			l.progress.Wait()
		}
	}
	if l.durableSeq >= seq || l.opts.Sync != SyncAlways {
		return l.ioErr
	}
	if l.ioErr != nil {
		return l.ioErr
	}
	return errors.New("wal: log closed before record became durable")
}

// Append sequences one record and waits for its durability guarantee. Under
// SyncAlways the record is on stable storage when Append returns.
func (l *Log) Append(payload []byte) (uint64, error) {
	seq, err := l.AppendAsync(payload)
	if err != nil {
		return 0, err
	}
	if err := l.WaitDurable(seq); err != nil {
		// The record is sequenced and (likely) in the log — it survives if
		// the OS flushed before a crash — just not provably durable: report
		// the sequence with the error so bookkeeping, snapshot sequences
		// above all, never undercounts applied state.
		return seq, err
	}
	return seq, nil
}

// commitLoop is the group committer: it drains the pending batch, writes it
// with one file write (rotating segments at frame boundaries), fsyncs once
// when the policy or a Sync barrier demands it, and publishes the new
// written/durable horizon to every waiter.
func (l *Log) commitLoop() {
	defer close(l.commitDone)
	l.seqMu.Lock()
	for {
		for l.pendingN == 0 && l.syncTarget <= l.durableSeq && !l.closed {
			l.wake.Wait()
		}
		if l.pendingN == 0 && l.syncTarget <= l.durableSeq && l.closed {
			break
		}
		if l.opts.GroupWindow > 0 && l.pendingN > 0 && !l.closed && l.syncTarget <= l.durableSeq {
			// Give concurrent appenders a window to join this batch. Never
			// delays an explicit Sync barrier or Close.
			l.seqMu.Unlock()
			time.Sleep(l.opts.GroupWindow)
			l.seqMu.Lock()
		}
		if l.opts.Sync == SyncAlways && l.pendingN > 0 && !l.closed {
			// An fsync is about to be paid for this batch. Appenders released
			// by the previous fsync are typically re-sequencing right now;
			// yield to the scheduler while the batch keeps growing (bounded)
			// so the burst shares this fsync instead of fragmenting across
			// several. Costs at most a few microsecond yields against an
			// fsync that is three orders of magnitude slower.
			for i := 0; i < 8; i++ {
				n := l.pendingN
				l.seqMu.Unlock()
				runtime.Gosched()
				l.seqMu.Lock()
				if l.pendingN == n || l.closed {
					break
				}
			}
		}
		batch := l.pending
		n := l.pendingN
		first := l.pendingFirst
		last := first + uint64(n) - 1
		l.pending = l.spare[:0:cap(l.spare)]
		l.pendingN = 0
		needSync := l.opts.Sync == SyncAlways || l.syncTarget > l.durableSeq
		hook := l.beforeSync
		l.seqMu.Unlock()

		var err error
		if n > 0 {
			err = l.writeBatch(batch, first)
		}
		if hook != nil {
			hook()
		}
		synced := false
		if err == nil && needSync {
			err = l.syncIO()
			synced = err == nil
		}

		l.seqMu.Lock()
		l.spare = batch[:0:cap(batch)]
		if err != nil {
			if l.ioErr == nil {
				l.ioErr = err
			}
		} else {
			if n > 0 {
				l.writtenSeq = last
				if l.met != nil {
					l.met.batchRecords.Observe(time.Duration(n) * time.Second)
					if synced && n > 1 && l.opts.Sync == SyncAlways {
						l.met.fsyncsSaved.Add(uint64(n - 1))
					}
				}
			}
			if synced {
				l.durableSeq = l.writtenSeq
			}
		}
		l.progress.Broadcast()
		if l.ioErr != nil {
			break
		}
	}
	l.committerDone = true
	l.progress.Broadcast()
	l.seqMu.Unlock()
}

// writeBatch appends a buffer of pre-encoded frames to the active segment,
// rotating at frame boundaries when a frame would push the segment past
// SegmentBytes. Frames between rotations go to the OS in a single write.
func (l *Log) writeBatch(batch []byte, firstSeq uint64) error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	off := 0
	nextSeq := firstSeq
	for off < len(batch) {
		runStart := off
		runSeq := nextSeq
		runBytes := int64(0)
		for off < len(batch) {
			frameLen := int64(headerBytes) + int64(binary.LittleEndian.Uint32(batch[off:]))
			if l.segBytes+runBytes > 0 && l.segBytes+runBytes+frameLen > l.opts.SegmentBytes {
				break // this frame starts the next segment
			}
			runBytes += frameLen
			off += int(frameLen)
			nextSeq++
		}
		if off == runStart {
			// The next frame needs a fresh segment: fsync and close the full
			// one (older segments never hold torn tails) and start the new
			// segment at that frame's sequence.
			if err := l.rotateLocked(runSeq); err != nil {
				return err
			}
			continue
		}
		if err := l.writeRun(batch[runStart:off]); err != nil {
			return err
		}
	}
	return nil
}

// writeRun writes one contiguous run of frames to the active segment.
// Callers must hold ioMu.
func (l *Log) writeRun(run []byte) error {
	n, err := l.file.Write(run)
	if err != nil {
		if n > 0 {
			// Cut the partial frame so the on-disk segment ends at the last
			// good record instead of garbage recovery would truncate away
			// together with later appends.
			_ = l.file.Truncate(l.segBytes)
		}
		return fmt.Errorf("wal: append: %w", err)
	}
	l.segBytes += int64(n)
	l.dirty = true
	return nil
}

// rotateLocked closes the active segment (fsyncing it so older segments can
// never hold torn tails) and starts a new one whose first record will be seq.
// Callers must hold ioMu.
func (l *Log) rotateLocked(seq uint64) error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.file.Close(); err != nil {
		return fmt.Errorf("wal: rotating segment: %w", err)
	}
	return l.openSegment(seq)
}

// Sync is a durability barrier: it blocks until every record sequenced
// before the call is fsynced, regardless of policy, and returns the first
// committer error otherwise. On a closed log it returns nil (Close already
// flushed).
func (l *Log) Sync() error {
	l.seqMu.Lock()
	defer l.seqMu.Unlock()
	if l.closed && l.committerDone {
		return nil
	}
	target := l.lastSeq
	if l.syncTarget < target {
		l.syncTarget = target
	}
	l.wake.Signal()
	for l.durableSeq < target && l.ioErr == nil && !l.committerDone {
		l.progress.Wait()
	}
	if l.durableSeq >= target {
		return nil
	}
	return l.ioErr
}

// syncIO fsyncs the active segment.
func (l *Log) syncIO() error {
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return l.syncLocked()
}

// syncLocked fsyncs the active segment if it has unsynced writes. Callers
// must hold ioMu.
func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	var start time.Time
	if l.met != nil {
		start = time.Now()
	}
	if err := l.file.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if l.met != nil {
		l.met.fsync.Observe(time.Since(start))
		l.met.fsyncs.Inc()
	}
	l.syncedBytes = l.segBytes
	l.dirty = false
	return nil
}

// waitWritten blocks until every sequenced record has been handed to the OS
// (not necessarily fsynced). Read-side admin operations use it so segment
// files reflect every acknowledged append.
func (l *Log) waitWritten() error {
	l.seqMu.Lock()
	defer l.seqMu.Unlock()
	for l.writtenSeq < l.lastSeq && l.ioErr == nil && !l.committerDone {
		l.wake.Signal()
		l.progress.Wait()
	}
	return l.ioErr
}

// Close drains the committer (pending appends are written, and fsynced under
// SyncAlways), flushes and closes the log. The log cannot be used afterwards.
func (l *Log) Close() error {
	l.seqMu.Lock()
	if l.closed {
		l.seqMu.Unlock()
		return nil
	}
	l.closed = true
	l.wake.Broadcast()
	l.seqMu.Unlock()
	if l.stopFlush != nil {
		close(l.stopFlush)
		<-l.flushDone
	}
	<-l.commitDone
	l.ioMu.Lock()
	err := l.syncLocked()
	if cerr := l.file.Close(); err == nil {
		err = cerr
	}
	l.ioMu.Unlock()
	if err == nil {
		l.seqMu.Lock()
		if l.ioErr == nil {
			l.durableSeq = l.writtenSeq
		}
		l.seqMu.Unlock()
	}
	return err
}

// LastSeq returns the sequence of the most recently sequenced record.
func (l *Log) LastSeq() uint64 {
	l.seqMu.Lock()
	defer l.seqMu.Unlock()
	return l.lastSeq
}

// DurableSeq returns the highest sequence covered by a completed fsync.
func (l *Log) DurableSeq() uint64 {
	l.seqMu.Lock()
	defer l.seqMu.Unlock()
	return l.durableSeq
}

// EnsureSeqAtLeast advances the next-append sequence past seq. Recovery calls
// this with the loaded snapshot's sequence: a crash can truncate the WAL tail
// below a durable snapshot, and without the bump new appends would reuse
// sequences the snapshot already covers — records the next recovery would
// then silently skip. It is a recovery-time API: callers must not have
// appends in flight.
func (l *Log) EnsureSeqAtLeast(seq uint64) {
	l.seqMu.Lock()
	defer l.seqMu.Unlock()
	if seq > l.lastSeq && l.pendingN == 0 {
		l.lastSeq = seq
		// The skipped sequences exist only in the snapshot; there is nothing
		// to write or fsync for them.
		l.writtenSeq = seq
		l.durableSeq = seq
	}
}

// Truncated reports whether a torn tail was cut when the log was opened.
func (l *Log) Truncated() bool {
	l.seqMu.Lock()
	defer l.seqMu.Unlock()
	return l.truncated
}

// Dir returns the data directory.
func (l *Log) Dir() string { return l.dir }

// Segments lists the on-disk segments in sequence order, after flushing any
// pending appends so the listing covers every acknowledged record.
func (l *Log) Segments() ([]SegmentInfo, error) {
	if err := l.waitWritten(); err != nil {
		return nil, err
	}
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	return listSegments(l.dir)
}

// Replay streams every record with sequence > after, in order, to fn. A torn
// tail in the newest segment ends the replay cleanly; corruption anywhere
// else is an error, as is an error returned by fn. Replay drains pending
// appends first, then holds the I/O lock, so it observes every acknowledged
// record and no concurrent write.
func (l *Log) Replay(after uint64, fn func(seq uint64, payload []byte) error) error {
	if err := l.waitWritten(); err != nil {
		return err
	}
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].FirstSeq-1 <= after {
			continue // every record here is covered by the snapshot
		}
		isNewest := i == len(segs)-1
		err := readSegment(filepath.Join(l.dir, seg.Name), func(seq uint64, payload []byte) error {
			if seq <= after {
				return nil
			}
			return fn(seq, payload)
		})
		if errors.Is(err, errTorn) {
			if isNewest {
				return nil
			}
			return fmt.Errorf("wal: segment %s: %w", seg.Name, err)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// RemoveSegmentsCoveredBy deletes every segment whose records all have
// sequence <= seq; the active (newest) segment is always kept. It returns the
// number of segments removed.
func (l *Log) RemoveSegmentsCoveredBy(seq uint64) (int, error) {
	if err := l.waitWritten(); err != nil {
		return 0, err
	}
	l.ioMu.Lock()
	defer l.ioMu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		lastOfSeg := segs[i+1].FirstSeq - 1
		if lastOfSeg > seq {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segs[i].Name)); err != nil {
			return removed, fmt.Errorf("wal: compacting: %w", err)
		}
		removed++
	}
	return removed, nil
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

// appendFrame encodes one record frame onto dst and returns the grown slice.
// The committer writes frames straight out of the pending buffer this builds,
// so a steady-state append allocates nothing: the two batch buffers are
// recycled forever once they reach the high-water batch size.
func appendFrame(dst []byte, seq uint64, payload []byte) []byte {
	// The header is built directly inside dst and the CRC patched in
	// afterwards: passing a stack array's slices to crc32 makes escape
	// analysis move it to the heap, which would cost one allocation per
	// append.
	off := len(dst)
	var hdr [headerBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	dst = append(dst, hdr[:]...)
	dst = append(dst, payload...)
	crc := crc32.Update(crc32.ChecksumIEEE(dst[off+8:off+16]), crc32.IEEETable, payload)
	binary.LittleEndian.PutUint32(dst[off+4:off+8], crc)
	return dst
}

func encodeFrame(seq uint64, payload []byte) []byte {
	return appendFrame(make([]byte, 0, headerBytes+len(payload)), seq, payload)
}

// readFrame reads one record. It returns errTorn for a partial or corrupt
// record and io.EOF at a clean end of segment.
func readFrame(r *bufio.Reader) (seq uint64, payload []byte, frameLen int64, err error) {
	header := make([]byte, headerBytes)
	if _, err := io.ReadFull(r, header); err != nil {
		if err == io.EOF {
			return 0, nil, 0, io.EOF
		}
		return 0, nil, 0, errTorn // partial header
	}
	n := binary.LittleEndian.Uint32(header[0:4])
	if n > maxPayloadBytes {
		return 0, nil, 0, errTorn
	}
	wantCRC := binary.LittleEndian.Uint32(header[4:8])
	seq = binary.LittleEndian.Uint64(header[8:16])
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, errTorn // partial payload
	}
	crc := crc32.NewIEEE()
	crc.Write(header[8:16])
	crc.Write(payload)
	if crc.Sum32() != wantCRC {
		return 0, nil, 0, errTorn
	}
	return seq, payload, headerBytes + int64(n), nil
}

// readSegment streams every valid record of one segment file to fn and
// returns errTorn if the segment ends in a partial or corrupt record.
func readSegment(path string, fn func(seq uint64, payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: reading segment: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		seq, payload, _, err := readFrame(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(seq, payload); err != nil {
			return err
		}
	}
}

// scanSegment walks a segment validating records. It returns the byte offset
// of the end of the last valid record, the highest valid sequence, and
// whether the segment ends in a torn record.
func scanSegment(path string) (validBytes int64, lastSeq uint64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: scanning segment: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		seq, _, frameLen, err := readFrame(r)
		if err == io.EOF {
			return validBytes, lastSeq, false, nil
		}
		if errors.Is(err, errTorn) {
			return validBytes, lastSeq, true, nil
		}
		if err != nil {
			return validBytes, lastSeq, false, err
		}
		validBytes += frameLen
		lastSeq = seq
	}
}

func listSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var out []SegmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		firstSeq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
		}
		out = append(out, SegmentInfo{Name: e.Name(), FirstSeq: firstSeq, Bytes: info.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FirstSeq < out[j].FirstSeq })
	return out, nil
}
