// Package wal implements durable persistence for the CQMS query log: a
// segmented append-only write-ahead log of storage mutations plus periodic
// full-store snapshots. The paper treats the query log as a long-lived,
// community-owned asset that "grows over time"; this package is what lets it
// survive a process crash or restart without losing a single logged query.
//
// Layout of a data directory:
//
//	wal-00000000000000000001.seg   log segment, named by its first sequence
//	wal-00000000000000004096.seg
//	snapshot-00000000000003000.snap  full store state as of sequence 3000
//
// Every log record is framed as
//
//	uint32 payload length | uint32 CRC32(seq,payload) | uint64 seq | payload
//
// (little-endian). On open, a torn tail — a partially written final record
// left by a crash — is detected by the length/CRC check and truncated, so
// recovery always resumes from the last fully durable record. Recovery loads
// the newest valid snapshot and replays only the log records with sequence
// numbers beyond it; compaction deletes segments and snapshots made obsolete
// by a newer snapshot.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// SyncPolicy controls when appended records are fsynced to stable storage.
type SyncPolicy int

// Sync policies.
const (
	// SyncInterval fsyncs from a background flusher every Options.SyncInterval.
	// A crash can lose at most the last interval of appends.
	SyncInterval SyncPolicy = iota
	// SyncAlways fsyncs after every append. No acknowledged record is ever
	// lost, at the cost of one fsync per mutation.
	SyncAlways
	// SyncOff never fsyncs explicitly; the OS flushes on its own schedule.
	SyncOff
)

// String returns the configuration spelling of the policy.
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncOff:
		return "off"
	default:
		return "interval"
	}
}

// ParseSyncPolicy parses "always", "interval" or "off".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "always":
		return SyncAlways, nil
	case "interval", "":
		return SyncInterval, nil
	case "off", "never":
		return SyncOff, nil
	default:
		return SyncInterval, fmt.Errorf("wal: unknown sync policy %q (want always, interval or off)", s)
	}
}

// Defaults for Options.
const (
	DefaultSegmentBytes = 8 << 20 // rotate segments at 8 MiB
	DefaultSyncInterval = 200 * time.Millisecond
)

// Options configures a Log.
type Options struct {
	// Dir is the data directory holding segments and snapshots.
	Dir string
	// Sync is the fsync policy for appends.
	Sync SyncPolicy
	// SyncInterval is the background flush period under SyncInterval.
	SyncInterval time.Duration
	// SegmentBytes is the size threshold at which the active segment is
	// rotated.
	SegmentBytes int64
	// Metrics, when set, receives the log's fsync instruments.
	Metrics *telemetry.Registry
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.SegmentBytes <= 0 {
		out.SegmentBytes = DefaultSegmentBytes
	}
	if out.SyncInterval <= 0 {
		out.SyncInterval = DefaultSyncInterval
	}
	return out
}

// SegmentInfo describes one on-disk log segment.
type SegmentInfo struct {
	Name     string
	FirstSeq uint64
	Bytes    int64
}

// Log is a segmented append-only record log. It is safe for concurrent use.
type Log struct {
	mu        sync.Mutex
	dir       string
	opts      Options
	file      *os.File // active segment
	segStart  uint64   // first sequence of the active segment
	segBytes  int64
	lastSeq   uint64 // last appended sequence (0 when the log is empty)
	dirty     bool   // writes not yet fsynced
	truncated bool   // a torn tail was cut during open
	closed    bool
	bgErr     error // first background-flush failure
	met       *logMetrics

	stopFlush chan struct{}
	flushDone chan struct{}
}

const (
	segmentPrefix  = "wal-"
	segmentSuffix  = ".seg"
	snapshotPrefix = "snapshot-"
	snapshotSuffix = ".snap"
	headerBytes    = 16 // uint32 len + uint32 crc + uint64 seq
	// maxPayloadBytes bounds a single record so a corrupt length field cannot
	// trigger a giant allocation during recovery.
	maxPayloadBytes = 256 << 20
)

// errTorn marks a partial or corrupt record at the end of a segment.
var errTorn = errors.New("wal: torn record")

// seqFileName and parseSeqFileName implement the shared <prefix><seq 20
// digits><suffix> naming of segments and snapshots.
func seqFileName(prefix string, seq uint64, suffix string) string {
	return fmt.Sprintf("%s%020d%s", prefix, seq, suffix)
}

func parseSeqFileName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	var seq uint64
	digits := strings.TrimSuffix(strings.TrimPrefix(name, prefix), suffix)
	if _, err := fmt.Sscanf(digits, "%d", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

func segmentName(firstSeq uint64) string {
	return seqFileName(segmentPrefix, firstSeq, segmentSuffix)
}

func parseSegmentName(name string) (uint64, bool) {
	return parseSeqFileName(name, segmentPrefix, segmentSuffix)
}

// OpenLog opens (or creates) the segmented log in opts.Dir, truncating any
// torn tail left in the newest segment by a crash.
func OpenLog(opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if opts.Dir == "" {
		return nil, errors.New("wal: open: empty directory")
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	l := &Log{dir: opts.Dir, opts: opts, met: newLogMetrics(opts.Metrics, opts.Sync)}
	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		path := filepath.Join(opts.Dir, last.Name)
		validBytes, lastSeq, torn, err := scanSegment(path)
		if err != nil {
			return nil, err
		}
		if torn {
			if err := os.Truncate(path, validBytes); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", last.Name, err)
			}
			l.truncated = true
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open: %w", err)
		}
		l.file = f
		l.segStart = last.FirstSeq
		l.segBytes = validBytes
		if lastSeq > 0 {
			l.lastSeq = lastSeq
		} else {
			// The newest segment holds no valid records: the log ends just
			// before the sequence the segment was named for.
			l.lastSeq = last.FirstSeq - 1
		}
	}
	if opts.Sync == SyncInterval {
		l.stopFlush = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flushLoop()
	}
	return l, nil
}

func (l *Log) openSegment(firstSeq uint64) error {
	f, err := os.OpenFile(filepath.Join(l.dir, segmentName(firstSeq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	// Persist the directory entry: without this a crash could lose the whole
	// segment file even though its records were fsynced.
	syncDir(l.dir)
	l.file = f
	l.segStart = firstSeq
	l.segBytes = 0
	return nil
}

func (l *Log) flushLoop() {
	defer close(l.flushDone)
	ticker := time.NewTicker(l.opts.SyncInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.stopFlush:
			return
		case <-ticker.C:
			if err := l.Sync(); err != nil {
				l.mu.Lock()
				if l.bgErr == nil {
					l.bgErr = err
				}
				l.mu.Unlock()
			}
		}
	}
}

// Err returns the first background-flush failure, if any. Appends under the
// interval policy are acknowledged before they reach disk, so a failing
// flusher must be surfaced out of band.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.bgErr
}

// Append writes one record and returns its sequence number. Under SyncAlways
// the record is on stable storage when Append returns.
func (l *Log) Append(payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, errors.New("wal: append on closed log")
	}
	seq := l.lastSeq + 1
	frame := encodeFrame(seq, payload)
	if l.segBytes > 0 && l.segBytes+int64(len(frame)) > l.opts.SegmentBytes {
		if err := l.rotateLocked(seq); err != nil {
			return 0, err
		}
	}
	if n, err := l.file.Write(frame); err != nil {
		if n > 0 {
			// Cut the partial frame so later appends are not stranded behind
			// garbage that recovery would truncate away together with them.
			if terr := l.file.Truncate(l.segBytes); terr != nil {
				l.closed = true // unrecoverable: refuse further appends
			}
		}
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.segBytes += int64(len(frame))
	l.lastSeq = seq
	l.dirty = true
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			// The record is in the log (it survives if the OS flushes before a
			// crash), just not yet durable: report the sequence with the error
			// so bookkeeping — snapshot sequences above all — never
			// undercounts applied state.
			return seq, err
		}
	}
	return seq, nil
}

// rotateLocked closes the active segment (fsyncing it so older segments can
// never hold torn tails) and starts a new one whose first record will be seq.
func (l *Log) rotateLocked(seq uint64) error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.file.Close(); err != nil {
		return fmt.Errorf("wal: rotating segment: %w", err)
	}
	return l.openSegment(seq)
}

// Sync flushes buffered appends to stable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty {
		return nil
	}
	var start time.Time
	if l.met != nil {
		start = time.Now()
	}
	if err := l.file.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if l.met != nil {
		l.met.fsync.Observe(time.Since(start))
		l.met.fsyncs.Inc()
	}
	l.dirty = false
	return nil
}

// Close flushes and closes the log. The log cannot be used afterwards.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	err := l.syncLocked()
	if cerr := l.file.Close(); err == nil {
		err = cerr
	}
	stop := l.stopFlush
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		<-l.flushDone
	}
	return err
}

// LastSeq returns the sequence of the most recently appended record.
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// EnsureSeqAtLeast advances the next-append sequence past seq. Recovery calls
// this with the loaded snapshot's sequence: a crash can truncate the WAL tail
// below a durable snapshot, and without the bump new appends would reuse
// sequences the snapshot already covers — records the next recovery would
// then silently skip.
func (l *Log) EnsureSeqAtLeast(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.lastSeq {
		l.lastSeq = seq
	}
}

// Truncated reports whether a torn tail was cut when the log was opened.
func (l *Log) Truncated() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.truncated
}

// Dir returns the data directory.
func (l *Log) Dir() string { return l.dir }

// Segments lists the on-disk segments in sequence order.
func (l *Log) Segments() ([]SegmentInfo, error) {
	return listSegments(l.dir)
}

// Replay streams every record with sequence > after, in order, to fn. A torn
// tail in the newest segment ends the replay cleanly; corruption anywhere
// else is an error, as is an error returned by fn.
func (l *Log) Replay(after uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.syncLocked(); err != nil {
		return err
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		if i+1 < len(segs) && segs[i+1].FirstSeq-1 <= after {
			continue // every record here is covered by the snapshot
		}
		isNewest := i == len(segs)-1
		err := readSegment(filepath.Join(l.dir, seg.Name), func(seq uint64, payload []byte) error {
			if seq <= after {
				return nil
			}
			return fn(seq, payload)
		})
		if errors.Is(err, errTorn) {
			if isNewest {
				return nil
			}
			return fmt.Errorf("wal: segment %s: %w", seg.Name, err)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// RemoveSegmentsCoveredBy deletes every segment whose records all have
// sequence <= seq; the active (newest) segment is always kept. It returns the
// number of segments removed.
func (l *Log) RemoveSegmentsCoveredBy(seq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	segs, err := listSegments(l.dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i+1 < len(segs); i++ {
		lastOfSeg := segs[i+1].FirstSeq - 1
		if lastOfSeg > seq {
			break
		}
		if err := os.Remove(filepath.Join(l.dir, segs[i].Name)); err != nil {
			return removed, fmt.Errorf("wal: compacting: %w", err)
		}
		removed++
	}
	return removed, nil
}

// ---------------------------------------------------------------------------
// Record framing
// ---------------------------------------------------------------------------

func encodeFrame(seq uint64, payload []byte) []byte {
	frame := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint64(frame[8:16], seq)
	copy(frame[headerBytes:], payload)
	crc := crc32.NewIEEE()
	crc.Write(frame[8:])
	binary.LittleEndian.PutUint32(frame[4:8], crc.Sum32())
	return frame
}

// readFrame reads one record. It returns errTorn for a partial or corrupt
// record and io.EOF at a clean end of segment.
func readFrame(r *bufio.Reader) (seq uint64, payload []byte, frameLen int64, err error) {
	header := make([]byte, headerBytes)
	if _, err := io.ReadFull(r, header); err != nil {
		if err == io.EOF {
			return 0, nil, 0, io.EOF
		}
		return 0, nil, 0, errTorn // partial header
	}
	n := binary.LittleEndian.Uint32(header[0:4])
	if n > maxPayloadBytes {
		return 0, nil, 0, errTorn
	}
	wantCRC := binary.LittleEndian.Uint32(header[4:8])
	seq = binary.LittleEndian.Uint64(header[8:16])
	payload = make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, 0, errTorn // partial payload
	}
	crc := crc32.NewIEEE()
	crc.Write(header[8:16])
	crc.Write(payload)
	if crc.Sum32() != wantCRC {
		return 0, nil, 0, errTorn
	}
	return seq, payload, headerBytes + int64(n), nil
}

// readSegment streams every valid record of one segment file to fn and
// returns errTorn if the segment ends in a partial or corrupt record.
func readSegment(path string, fn func(seq uint64, payload []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("wal: reading segment: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		seq, payload, _, err := readFrame(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := fn(seq, payload); err != nil {
			return err
		}
	}
}

// scanSegment walks a segment validating records. It returns the byte offset
// of the end of the last valid record, the highest valid sequence, and
// whether the segment ends in a torn record.
func scanSegment(path string) (validBytes int64, lastSeq uint64, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: scanning segment: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	for {
		seq, _, frameLen, err := readFrame(r)
		if err == io.EOF {
			return validBytes, lastSeq, false, nil
		}
		if errors.Is(err, errTorn) {
			return validBytes, lastSeq, true, nil
		}
		if err != nil {
			return validBytes, lastSeq, false, err
		}
		validBytes += frameLen
		lastSeq = seq
	}
}

func listSegments(dir string) ([]SegmentInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
	}
	var out []SegmentInfo
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		firstSeq, ok := parseSegmentName(e.Name())
		if !ok {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, fmt.Errorf("wal: listing %s: %w", dir, err)
		}
		out = append(out, SegmentInfo{Name: e.Name(), FirstSeq: firstSeq, Bytes: info.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].FirstSeq < out[j].FirstSeq })
	return out, nil
}
