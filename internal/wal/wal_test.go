package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testOptions(dir string) Options {
	return Options{Dir: dir, Sync: SyncOff, SegmentBytes: DefaultSegmentBytes}
}

func mustAppend(t *testing.T, l *Log, payload string) uint64 {
	t.Helper()
	seq, err := l.Append([]byte(payload))
	if err != nil {
		t.Fatalf("Append(%q): %v", payload, err)
	}
	return seq
}

func collect(t *testing.T, l *Log, after uint64) map[uint64]string {
	t.Helper()
	out := map[uint64]string{}
	err := l.Replay(after, func(seq uint64, payload []byte) error {
		out[seq] = string(payload)
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(%d): %v", after, err)
	}
	return out
}

func TestAppendAndReplay(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(testOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	for i := 1; i <= 10; i++ {
		seq := mustAppend(t, l, fmt.Sprintf("record-%d", i))
		if seq != uint64(i) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	got := collect(t, l, 0)
	if len(got) != 10 {
		t.Fatalf("replayed %d records, want 10", len(got))
	}
	if got[7] != "record-7" {
		t.Fatalf("record 7 = %q", got[7])
	}
	// Replay after a midpoint skips the prefix.
	tail := collect(t, l, 6)
	if len(tail) != 4 {
		t.Fatalf("replay after 6 returned %d records, want 4", len(tail))
	}
	if _, ok := tail[6]; ok {
		t.Fatal("replay after 6 included seq 6")
	}
}

func TestReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(testOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "a")
	mustAppend(t, l, "b")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(testOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq after reopen = %d, want 2", l2.LastSeq())
	}
	if seq := mustAppend(t, l2, "c"); seq != 3 {
		t.Fatalf("append after reopen assigned seq %d, want 3", seq)
	}
	got := collect(t, l2, 0)
	if got[1] != "a" || got[2] != "b" || got[3] != "c" {
		t.Fatalf("replay after reopen = %v", got)
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.SegmentBytes = 256
	l, err := OpenLog(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 20; i++ {
		if _, err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := l.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 5 {
		t.Fatalf("expected rotation to produce several segments, got %d", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].FirstSeq <= segs[i-1].FirstSeq {
			t.Fatalf("segments out of order: %+v", segs)
		}
	}
	if got := collect(t, l, 0); len(got) != 20 {
		t.Fatalf("replayed %d records across segments, want 20", len(got))
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(testOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "alpha")
	mustAppend(t, l, "beta")
	mustAppend(t, l, "gamma")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Chop bytes off the end of the only segment, simulating a crash mid-write.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, segs[0].Name)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(testOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !l2.Truncated() {
		t.Fatal("open did not report a torn tail")
	}
	if l2.LastSeq() != 2 {
		t.Fatalf("LastSeq after torn tail = %d, want 2", l2.LastSeq())
	}
	// The log stays appendable and the torn record's sequence is reused.
	if seq := mustAppend(t, l2, "gamma-rewrite"); seq != 3 {
		t.Fatalf("append after truncation assigned seq %d, want 3", seq)
	}
	got := collect(t, l2, 0)
	if got[1] != "alpha" || got[2] != "beta" || got[3] != "gamma-rewrite" {
		t.Fatalf("replay after truncation = %v", got)
	}
}

func TestCorruptRecordTruncatesFromThere(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(testOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	mustAppend(t, l, "first")
	mustAppend(t, l, "second")
	mustAppend(t, l, "third")
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip a payload byte inside the second record: its CRC no longer matches,
	// so recovery keeps only the records before it.
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0].Name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	firstLen := int64(headerBytes + len("first"))
	data[firstLen+headerBytes] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLog(testOptions(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !l2.Truncated() {
		t.Fatal("open did not report truncation after CRC mismatch")
	}
	if l2.LastSeq() != 1 {
		t.Fatalf("LastSeq after corruption = %d, want 1", l2.LastSeq())
	}
	got := collect(t, l2, 0)
	if len(got) != 1 || got[1] != "first" {
		t.Fatalf("replay after corruption = %v", got)
	}
}

func TestReplayErrorsOnCorruptOlderSegment(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.SegmentBytes = 64
	l, err := OpenLog(opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		mustAppend(t, l, fmt.Sprintf("record-number-%02d", i))
	}
	segs, err := l.Segments()
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need at least 3 segments, got %d", len(segs))
	}
	// Corrupt the first (non-active) segment: replay must fail loudly rather
	// than silently skip committed records.
	path := filepath.Join(dir, segs[0].Name)
	data, _ := os.ReadFile(path)
	data[headerBytes] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	err = l.Replay(0, func(uint64, []byte) error { return nil })
	if err == nil {
		t.Fatal("replay over corrupt older segment succeeded")
	}
	l.Close()
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, err := WriteSnapshot(dir, 42, []byte("state-42")); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteSnapshot(dir, 99, []byte("state-99")); err != nil {
		t.Fatal(err)
	}
	seq, payload, ok, err := LatestSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("LatestSnapshot: ok=%v err=%v", ok, err)
	}
	if seq != 99 || string(payload) != "state-99" {
		t.Fatalf("LatestSnapshot = (%d, %q)", seq, payload)
	}

	// Corrupting the newest snapshot falls back to the older one.
	data, _ := os.ReadFile(filepath.Join(dir, snapshotName(99)))
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(filepath.Join(dir, snapshotName(99)), data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, payload, ok, err = LatestSnapshot(dir)
	if err != nil || !ok {
		t.Fatalf("LatestSnapshot after corruption: ok=%v err=%v", ok, err)
	}
	if seq != 42 || string(payload) != "state-42" {
		t.Fatalf("fallback snapshot = (%d, %q)", seq, payload)
	}

	removed, err := RemoveSnapshotsBefore(dir, 99)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed %d snapshots, want 1", removed)
	}
}

func TestLatestSnapshotEmptyDir(t *testing.T) {
	_, _, ok, err := LatestSnapshot(t.TempDir())
	if err != nil || ok {
		t.Fatalf("LatestSnapshot on empty dir: ok=%v err=%v", ok, err)
	}
}

func TestRemoveSegmentsCoveredBy(t *testing.T) {
	dir := t.TempDir()
	opts := testOptions(dir)
	opts.SegmentBytes = 64
	l, err := OpenLog(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 12; i++ {
		mustAppend(t, l, fmt.Sprintf("record-number-%02d", i))
	}
	before, _ := l.Segments()
	if len(before) < 4 {
		t.Fatalf("need several segments, got %d", len(before))
	}
	// A sequence inside the log: only fully covered segments go.
	cover := before[2].FirstSeq - 1
	removed, err := l.RemoveSegmentsCoveredBy(cover)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 {
		t.Fatalf("removed %d segments, want 2", removed)
	}
	got := collect(t, l, cover)
	for seq := range got {
		if seq <= cover {
			t.Fatalf("replay returned covered seq %d", seq)
		}
	}
	// The active segment survives even when fully covered.
	if _, err := l.RemoveSegmentsCoveredBy(l.LastSeq()); err != nil {
		t.Fatal(err)
	}
	after, _ := l.Segments()
	if len(after) != 1 {
		t.Fatalf("%d segments left, want only the active one", len(after))
	}
}

func TestSyncPolicies(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"", SyncInterval}, {"off", SyncOff}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
	}
	if _, err := ParseSyncPolicy("bogus"); err == nil {
		t.Fatal("ParseSyncPolicy accepted bogus policy")
	}

	// Appends reach disk under every policy.
	for _, policy := range []SyncPolicy{SyncAlways, SyncInterval, SyncOff} {
		dir := t.TempDir()
		opts := Options{Dir: dir, Sync: policy, SyncInterval: 10 * time.Millisecond}
		l, err := OpenLog(opts)
		if err != nil {
			t.Fatal(err)
		}
		mustAppend(t, l, "payload")
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		l2, err := OpenLog(opts)
		if err != nil {
			t.Fatal(err)
		}
		if got := collect(t, l2, 0); got[1] != "payload" {
			t.Fatalf("policy %v: replay = %v", policy, got)
		}
		l2.Close()
	}
}
