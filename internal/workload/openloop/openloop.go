// Package openloop is the open-loop load harness for the v1 HTTP serving
// path. Unlike the closed-loop trace replay in cmd/cqms-workload (which
// waits for each batch before sending the next, so a slow server throttles
// its own load), this harness dispatches requests on a Poisson arrival
// schedule that does not slow down when the server does: arrivals keep
// coming at the configured rate, latency is measured from each request's
// scheduled arrival time, and queueing delay therefore shows up in the
// percentiles instead of being silently absorbed (the coordinated-omission
// trap).
//
// The generated traffic mixes the four interactive operations of the CQMS
// front end — query submission, keyword search, completion assistance and
// the stats dashboard — across a configurable user population (up to 10^6
// distinct principals), so the server-side stats counters see realistic
// high-cardinality user activity while serving reads.
package openloop

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/client"
	"repro/internal/workload"
)

// Operation names, used as PerOp keys and mix weights.
const (
	OpSubmit   = "submit"
	OpSearch   = "search"
	OpComplete = "complete"
	OpStats    = "stats"
)

// Mix weights the four operations. Weights are relative; zero disables an
// operation.
type Mix struct {
	Submit   int `json:"submit"`
	Search   int `json:"search"`
	Complete int `json:"complete"`
	Stats    int `json:"stats"`
}

// DefaultMix is submission-heavy with a steady background of interactive
// reads, approximating an exploratory user base where most interactions log
// a query and the rest browse or ask for help.
func DefaultMix() Mix { return Mix{Submit: 60, Search: 15, Complete: 15, Stats: 10} }

func (m Mix) total() int { return m.Submit + m.Search + m.Complete + m.Stats }

// Config sizes one open-loop run.
type Config struct {
	Seed       int64
	Population int           // distinct users issuing traffic
	Rate       float64       // target arrivals per second (Poisson)
	Duration   time.Duration // dispatching window
	// MaxInFlight caps concurrent outstanding requests; arrivals beyond the
	// cap are shed and reported, because an unbounded harness would run out
	// of sockets long before it produced a useful overload signal.
	MaxInFlight int
	Timeout     time.Duration // per-request timeout
	// Skew > 1 draws users from a Zipf distribution with that exponent
	// (heavy hitters); otherwise users are drawn uniformly, which maximises
	// the distinct-user cardinality the stats layer must absorb.
	Skew float64
	Mix  Mix
}

// DefaultConfig returns a small smoke-sized run.
func DefaultConfig() Config {
	return Config{
		Seed:        42,
		Population:  1000,
		Rate:        200,
		Duration:    10 * time.Second,
		MaxInFlight: 512,
		Timeout:     5 * time.Second,
		Mix:         DefaultMix(),
	}
}

// ---------------------------------------------------------------------------
// Latency recording
// ---------------------------------------------------------------------------

// The recorder uses geometric buckets (8% growth from 10µs), so quantile
// estimates carry at most one bucket width (~8% relative) of error while the
// whole recorder stays a fixed-size array — no per-sample allocation at
// 10^5+ samples per run.
const (
	latencyBase    = 10 * time.Microsecond
	latencyGrowth  = 1.08
	latencyBuckets = 220 // upper bound of last bucket ≈ 208s
)

type latencyRecorder struct {
	count   int64
	sum     time.Duration
	max     time.Duration
	buckets [latencyBuckets]int64
}

func bucketIndex(d time.Duration) int {
	if d <= latencyBase {
		return 0
	}
	idx := int(math.Ceil(math.Log(float64(d)/float64(latencyBase)) / math.Log(latencyGrowth)))
	if idx >= latencyBuckets {
		idx = latencyBuckets - 1
	}
	return idx
}

func bucketBound(i int) time.Duration {
	return time.Duration(float64(latencyBase) * math.Pow(latencyGrowth, float64(i)))
}

func (l *latencyRecorder) record(d time.Duration) {
	l.count++
	l.sum += d
	if d > l.max {
		l.max = d
	}
	l.buckets[bucketIndex(d)]++
}

// quantile returns the upper bound of the bucket containing the q-quantile
// sample, clamped to the observed maximum.
func (l *latencyRecorder) quantile(q float64) time.Duration {
	if l.count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(l.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := range l.buckets {
		cum += l.buckets[i]
		if cum >= rank {
			if b := bucketBound(i); b < l.max {
				return b
			}
			return l.max
		}
	}
	return l.max
}

// LatencySummary is the JSON-facing digest of one recorder.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanMs float64 `json:"meanMs"`
	P50Ms  float64 `json:"p50Ms"`
	P90Ms  float64 `json:"p90Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MaxMs  float64 `json:"maxMs"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func (l *latencyRecorder) summary() LatencySummary {
	s := LatencySummary{
		Count: l.count,
		P50Ms: ms(l.quantile(0.50)),
		P90Ms: ms(l.quantile(0.90)),
		P99Ms: ms(l.quantile(0.99)),
		MaxMs: ms(l.max),
	}
	if l.count > 0 {
		s.MeanMs = ms(l.sum / time.Duration(l.count))
	}
	return s
}

// ---------------------------------------------------------------------------
// Report and SLO gate
// ---------------------------------------------------------------------------

// Report is the outcome of one open-loop run, JSON-serialisable so
// cqms-benchgate can gate on it in CI and README numbers can cite it.
type Report struct {
	Population  int                       `json:"population"`
	TargetRate  float64                   `json:"targetRate"`
	DurationSec float64                   `json:"durationSec"`
	Offered     int64                     `json:"offered"`
	Completed   int64                     `json:"completed"`
	Failed      int64                     `json:"failed"`
	Shed        int64                     `json:"shed"`
	AchievedQPS float64                   `json:"achievedQPS"`
	Overall     LatencySummary            `json:"overall"`
	PerOp       map[string]LatencySummary `json:"perOp"`
}

// SLO is the service-level gate applied to a report.
type SLO struct {
	MinQPS         float64 // completed requests per second, 0 disables
	MaxP99Ms       float64 // overall p99 latency, 0 disables
	MaxFailureRate float64 // failed/(failed+completed); shed always fails the gate
}

// CheckSLO returns the list of violations, empty when the report meets the
// SLO. A sustainable operating point is one with no violations.
func (r *Report) CheckSLO(slo SLO) []string {
	var v []string
	if r.Shed > 0 {
		v = append(v, fmt.Sprintf("shed %d arrivals: server did not keep up with the offered rate", r.Shed))
	}
	if slo.MinQPS > 0 && r.AchievedQPS < slo.MinQPS {
		v = append(v, fmt.Sprintf("achieved %.1f qps < floor %.1f qps", r.AchievedQPS, slo.MinQPS))
	}
	if slo.MaxP99Ms > 0 && r.Overall.P99Ms > slo.MaxP99Ms {
		v = append(v, fmt.Sprintf("p99 %.1fms > bound %.1fms", r.Overall.P99Ms, slo.MaxP99Ms))
	}
	total := r.Failed + r.Completed
	if total > 0 {
		rate := float64(r.Failed) / float64(total)
		if rate > slo.MaxFailureRate {
			v = append(v, fmt.Sprintf("failure rate %.2f%% > bound %.2f%%", rate*100, slo.MaxFailureRate*100))
		}
	}
	return v
}

// Format renders the report as readable text.
func (r *Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "open-loop: population %d, target %.0f req/s for %.1fs\n",
		r.Population, r.TargetRate, r.DurationSec)
	fmt.Fprintf(&sb, "  offered %d  completed %d  failed %d  shed %d  achieved %.1f qps\n",
		r.Offered, r.Completed, r.Failed, r.Shed, r.AchievedQPS)
	fmt.Fprintf(&sb, "  overall   p50 %7.2fms  p90 %7.2fms  p99 %7.2fms  max %7.2fms\n",
		r.Overall.P50Ms, r.Overall.P90Ms, r.Overall.P99Ms, r.Overall.MaxMs)
	ops := make([]string, 0, len(r.PerOp))
	for op := range r.PerOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		s := r.PerOp[op]
		fmt.Fprintf(&sb, "  %-9s p50 %7.2fms  p90 %7.2fms  p99 %7.2fms  max %7.2fms  (%d ok)\n",
			op, s.P50Ms, s.P90Ms, s.P99Ms, s.MaxMs, s.Count)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// The harness
// ---------------------------------------------------------------------------

// arrival is one planned request: all randomness is drawn on the dispatcher
// goroutine, so the worker only executes.
type arrival struct {
	op  string
	run func(ctx context.Context) error
}

type collector struct {
	mu      sync.Mutex
	overall latencyRecorder
	perOp   map[string]*latencyRecorder
	failed  int64
}

func (c *collector) record(op string, d time.Duration, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.failed++
		return
	}
	c.overall.record(d)
	rec := c.perOp[op]
	if rec == nil {
		rec = &latencyRecorder{}
		c.perOp[op] = rec
	}
	rec.record(d)
}

var searchTerms = []string{"watertemp", "salinity", "stars", "sensors", "observations"}

var completePartials = map[string][]string{
	"limnology": {
		"SELECT * FROM WaterTemp WHERE ",
		"SELECT lake, temp FROM WaterTemp WHERE temp ",
		"SELECT * FROM WaterSalinity WHERE ",
	},
	"astro": {
		"SELECT name FROM Stars WHERE ",
		"SELECT * FROM Observations WHERE ",
	},
}

// Run executes one open-loop run against the server at baseURL and returns
// its report. The context cancels the run early; the report then covers the
// traffic dispatched so far.
func Run(ctx context.Context, baseURL string, cfg Config) (*Report, error) {
	if cfg.Population <= 0 {
		return nil, fmt.Errorf("openloop: population must be positive, got %d", cfg.Population)
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("openloop: rate must be positive, got %g", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("openloop: duration must be positive, got %s", cfg.Duration)
	}
	if cfg.Mix.total() <= 0 {
		return nil, fmt.Errorf("openloop: operation mix has no positive weights")
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 512
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Second
	}

	// A dedicated transport sized to the in-flight cap: the default keeps
	// only two idle connections per host, which at hundreds of concurrent
	// requests degenerates into connection churn and measures the TCP stack
	// instead of the server.
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConns = cfg.MaxInFlight
	transport.MaxIdleConnsPerHost = cfg.MaxInFlight
	httpClient := &http.Client{Timeout: cfg.Timeout, Transport: transport}
	defer transport.CloseIdleConnections()
	base := client.New(baseURL, client.WithHTTPClient(httpClient), client.WithPageSize(25))

	r := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.Skew > 1 && cfg.Population > 1 {
		zipf = rand.NewZipf(r, cfg.Skew, 1, uint64(cfg.Population-1))
	}
	src := workload.NewQuerySource(cfg.Seed + 1)

	col := &collector{perOp: make(map[string]*latencyRecorder)}
	sem := make(chan struct{}, cfg.MaxInFlight)
	var wg sync.WaitGroup
	var offered, shed int64

	start := time.Now()
	deadline := start.Add(cfg.Duration)
	next := start
	for next.Before(deadline) && ctx.Err() == nil {
		if !sleepUntil(ctx, next) {
			break
		}
		a := plan(r, zipf, src, base, cfg)
		offered++
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(a arrival, scheduled time.Time) {
				defer wg.Done()
				defer func() { <-sem }()
				reqCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
				err := a.run(reqCtx)
				cancel()
				// Latency from the scheduled arrival, not the dispatch
				// instant: a backlogged schedule charges its queueing delay
				// to the measurement.
				col.record(a.op, time.Since(scheduled), err)
			}(a, next)
		default:
			shed++
		}
		// Poisson arrivals: exponential inter-arrival times.
		next = next.Add(time.Duration(r.ExpFloat64() / cfg.Rate * float64(time.Second)))
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{
		Population:  cfg.Population,
		TargetRate:  cfg.Rate,
		DurationSec: elapsed.Seconds(),
		Offered:     offered,
		Completed:   col.overall.count,
		Failed:      col.failed,
		Shed:        shed,
		Overall:     col.overall.summary(),
		PerOp:       make(map[string]LatencySummary, len(col.perOp)),
	}
	if elapsed > 0 {
		rep.AchievedQPS = float64(col.overall.count) / elapsed.Seconds()
	}
	for op, rec := range col.perOp {
		rep.PerOp[op] = rec.summary()
	}
	return rep, nil
}

// plan draws one arrival: operation, acting user, and the request closure.
func plan(r *rand.Rand, zipf *rand.Zipf, src *workload.QuerySource, base *client.Client, cfg Config) arrival {
	idx := 0
	if zipf != nil {
		idx = int(zipf.Uint64())
	} else if cfg.Population > 1 {
		idx = r.Intn(cfg.Population)
	}
	user := workload.UserName(idx)
	group := workload.GroupOf(idx, cfg.Population)
	c := base.As(user, group)

	switch op := pickOp(r, cfg.Mix); op {
	case OpSearch:
		term := searchTerms[r.Intn(len(searchTerms))]
		return arrival{op: op, run: func(ctx context.Context) error {
			it := c.SearchKeyword(ctx, term)
			it.Next() // first page only: an interactive user stops early
			return it.Err()
		}}
	case OpComplete:
		partials := completePartials[group]
		partial := partials[r.Intn(len(partials))]
		return arrival{op: op, run: func(ctx context.Context) error {
			_, err := c.Complete(ctx, partial, 5)
			return err
		}}
	case OpStats:
		return arrival{op: op, run: func(ctx context.Context) error {
			_, err := c.Stats(ctx)
			return err
		}}
	default:
		sqlText := src.Query(group)
		return arrival{op: OpSubmit, run: func(ctx context.Context) error {
			_, err := c.Submit(ctx, sqlText, client.Group(group), client.Visibility("group"))
			return err
		}}
	}
}

func pickOp(r *rand.Rand, m Mix) string {
	n := r.Intn(m.total())
	if n < m.Submit {
		return OpSubmit
	}
	n -= m.Submit
	if n < m.Search {
		return OpSearch
	}
	n -= m.Search
	if n < m.Complete {
		return OpComplete
	}
	return OpStats
}

// sleepUntil blocks until t or context cancellation; it reports whether the
// deadline was reached.
func sleepUntil(ctx context.Context, t time.Time) bool {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}
