package openloop

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestBucketIndexRoundTrip pins the geometric histogram's defining property:
// every duration lands in a bucket whose upper bound is within one growth
// factor above it, so quantiles overshoot by at most ~8%.
func TestBucketIndexRoundTrip(t *testing.T) {
	for _, d := range []time.Duration{
		0, time.Microsecond, 10 * time.Microsecond, 11 * time.Microsecond,
		time.Millisecond, 17 * time.Millisecond, time.Second, 3 * time.Minute,
	} {
		i := bucketIndex(d)
		if i < 0 || i >= latencyBuckets {
			t.Fatalf("bucketIndex(%v) = %d out of range", d, i)
		}
		bound := bucketBound(i)
		if bound < d && i < latencyBuckets-1 {
			t.Errorf("bucketBound(%d) = %v below sample %v", i, bound, d)
		}
		if i > 0 && float64(bound) > float64(d)*latencyGrowth*latencyGrowth {
			t.Errorf("bucketBound(%d) = %v overshoots sample %v by more than two growth steps", i, bound, d)
		}
	}
}

func TestQuantilesOrderedAndClamped(t *testing.T) {
	var l latencyRecorder
	rng := rand.New(rand.NewSource(1))
	max := time.Duration(0)
	for i := 0; i < 5000; i++ {
		d := time.Duration(rng.Intn(200)) * time.Millisecond
		if d > max {
			max = d
		}
		l.record(d)
	}
	p50, p90, p99 := l.quantile(0.50), l.quantile(0.90), l.quantile(0.99)
	if p50 > p90 || p90 > p99 {
		t.Fatalf("quantiles out of order: p50 %v p90 %v p99 %v", p50, p90, p99)
	}
	// Quantiles report bucket upper bounds but never exceed the observed max.
	if p99 > max {
		t.Fatalf("p99 %v exceeds observed max %v", p99, max)
	}
	s := l.summary()
	if s.Count != 5000 || s.MaxMs != ms(max) {
		t.Fatalf("summary count %d max %.2f, want 5000 and %.2f", s.Count, s.MaxMs, ms(max))
	}
}

func TestCheckSLOVerdicts(t *testing.T) {
	base := Report{
		Completed:   1000,
		AchievedQPS: 200,
		Overall:     LatencySummary{P99Ms: 40},
	}
	if v := base.CheckSLO(SLO{MinQPS: 150, MaxP99Ms: 100, MaxFailureRate: 0.01}); len(v) != 0 {
		t.Fatalf("healthy report should pass, got %v", v)
	}
	shed := base
	shed.Shed = 3
	if v := shed.CheckSLO(SLO{}); len(v) != 1 || !strings.Contains(v[0], "shed") {
		t.Fatalf("shed arrivals must always fail the gate, got %v", v)
	}
	slow := base
	slow.Overall.P99Ms = 300
	if v := slow.CheckSLO(SLO{MaxP99Ms: 100}); len(v) != 1 || !strings.Contains(v[0], "p99") {
		t.Fatalf("p99 breach should fail, got %v", v)
	}
	starved := base
	starved.AchievedQPS = 10
	if v := starved.CheckSLO(SLO{MinQPS: 150}); len(v) != 1 || !strings.Contains(v[0], "qps") {
		t.Fatalf("qps floor breach should fail, got %v", v)
	}
	flaky := base
	flaky.Failed = 100
	if v := flaky.CheckSLO(SLO{MaxFailureRate: 0.01}); len(v) != 1 || !strings.Contains(v[0], "failure rate") {
		t.Fatalf("failure-rate breach should fail, got %v", v)
	}
}

func TestPickOpRespectsMix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	mix := Mix{Submit: 50, Search: 50}
	for i := 0; i < 10000; i++ {
		counts[pickOp(rng, mix)]++
	}
	if counts[OpComplete] != 0 || counts[OpStats] != 0 {
		t.Fatalf("zero-weight ops were picked: %v", counts)
	}
	if counts[OpSubmit] < 4500 || counts[OpSearch] < 4500 {
		t.Fatalf("50/50 mix badly skewed: %v", counts)
	}
}
