package workload

import (
	"fmt"
	"math/rand"
)

// This file adapts the session-structured topic templates for open-loop load
// generation, where each arrival is an independent query rather than a step
// in a scripted session. The open-loop harness (internal/workload/openloop)
// lives in a subpackage so it can import internal/client without creating a
// test import cycle through internal/server.

// GroupOf returns the group of the idx-th synthetic user under the standard
// population split: the first two thirds are limnologists, the rest
// astronomers. It matches the rule Generate applies to trace users.
func GroupOf(idx, population int) string {
	if population > 0 && idx >= population*2/3 {
		return "astro"
	}
	return "limnology"
}

// UserName returns the canonical name of the idx-th synthetic user. The width
// accommodates populations up to 10^7 while sorting lexicographically.
func UserName(idx int) string {
	return fmt.Sprintf("user%07d", idx)
}

// QuerySource generates standalone exploratory queries from the topic
// templates. Unlike Generate it has no session structure: every call is an
// independent draw, which is what an open-loop arrival process needs. It is
// not safe for concurrent use; the open-loop dispatcher owns one.
type QuerySource struct {
	r      *rand.Rand
	topics []topic
}

// NewQuerySource returns a deterministic query source.
func NewQuerySource(seed int64) *QuerySource {
	return &QuerySource{r: rand.New(rand.NewSource(seed)), topics: allTopics()}
}

// Query returns one exploratory query a member of group would plausibly
// issue: a topic start template, or one evolution step applied to it.
func (s *QuerySource) Query(group string) string {
	tp := pickTopic(s.r, s.topics, group)
	q := tp.start(s.r)
	if s.r.Intn(2) == 1 {
		q = tp.steps[s.r.Intn(len(tp.steps))](s.r, q)
	}
	return q
}
