// Package workload is the evaluation substrate of this reproduction. The
// paper motivates the CQMS with large shared scientific databases (SDSS,
// IRIS, LSST) and their multi-user exploratory query traces; neither the
// databases nor the traces are available, so this package synthesises the
// closest equivalent: a water-quality/astronomy-style schema (the paper's own
// running example plus a second scientific topic), deterministic data, and
// multi-user exploratory query traces with ground-truth session boundaries
// and topics.
//
// The traces are session-structured: each synthetic session starts from a
// topic template and evolves through constant tweaks, added predicates,
// added tables/joins, projection changes and aggregation — the behaviours the
// session detector, miner and recommender are designed to exploit.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/profiler"
	"repro/internal/storage"
)

// SchemaDDL returns the CREATE TABLE statements of the synthetic scientific
// database: the paper's lakes schema plus an astronomy topic.
func SchemaDDL() []string {
	return []string{
		"CREATE TABLE WaterTemp (id INT PRIMARY KEY, lake TEXT, loc_x INT, loc_y INT, temp FLOAT, measured_day INT)",
		"CREATE TABLE WaterSalinity (id INT PRIMARY KEY, lake TEXT, loc_x INT, loc_y INT, salinity FLOAT, depth FLOAT)",
		"CREATE TABLE CityLocations (city TEXT, state TEXT, loc_x INT, loc_y INT, pop INT)",
		"CREATE TABLE Sensors (sensor_id INT PRIMARY KEY, lake TEXT, kind TEXT, installed_day INT, battery FLOAT)",
		"CREATE TABLE Stars (star_id INT PRIMARY KEY, name TEXT, ra FLOAT, dec FLOAT, magnitude FLOAT)",
		"CREATE TABLE Observations (obs_id INT PRIMARY KEY, star_id INT, observed_day INT, flux FLOAT, band TEXT)",
	}
}

// Columns returns the schema as a table -> column-names map, used to seed the
// recommender's schema catalog.
func Columns() map[string][]string {
	return map[string][]string{
		"WaterTemp":     {"id", "lake", "loc_x", "loc_y", "temp", "measured_day"},
		"WaterSalinity": {"id", "lake", "loc_x", "loc_y", "salinity", "depth"},
		"CityLocations": {"city", "state", "loc_x", "loc_y", "pop"},
		"Sensors":       {"sensor_id", "lake", "kind", "installed_day", "battery"},
		"Stars":         {"star_id", "name", "ra", "dec", "magnitude"},
		"Observations":  {"obs_id", "star_id", "observed_day", "flux", "band"},
	}
}

var lakeNames = []string{
	"Lake Washington", "Lake Union", "Lake Sammamish", "Lake Chelan",
	"Lake Crescent", "Lake Tahoe", "Lake Michigan", "Lake Superior",
}

var cityRows = []struct {
	city, state string
	locX, locY  int
	pop         int
}{
	{"Seattle", "WA", 10, 20, 750000},
	{"Bellevue", "WA", 12, 22, 150000},
	{"Tacoma", "WA", 14, 18, 220000},
	{"Spokane", "WA", 40, 25, 230000},
	{"Portland", "OR", 16, 5, 650000},
	{"Detroit", "MI", 90, 95, 630000},
	{"Ann Arbor", "MI", 92, 93, 120000},
	{"Chicago", "IL", 80, 70, 2700000},
}

// Populate creates the schema in the engine and fills it with rowsPerTable
// deterministic rows per measurement table (seeded by seed).
func Populate(eng *engine.Engine, rowsPerTable int, seed int64) error {
	for _, ddl := range SchemaDDL() {
		if _, err := eng.Execute(ddl); err != nil {
			return fmt.Errorf("workload: creating schema: %w", err)
		}
	}
	r := rand.New(rand.NewSource(seed))
	cat := eng.Catalog()

	insert := func(table string, rows []engine.Row) error {
		if _, err := cat.Insert(table, nil, rows); err != nil {
			return fmt.Errorf("workload: populating %s: %w", table, err)
		}
		return nil
	}

	var tempRows, salRows, sensorRows []engine.Row
	for i := 0; i < rowsPerTable; i++ {
		lake := lakeNames[r.Intn(len(lakeNames))]
		locX := int64(r.Intn(100))
		locY := int64(r.Intn(100))
		tempRows = append(tempRows, engine.Row{
			engine.NewInt(int64(i + 1)), engine.NewText(lake),
			engine.NewInt(locX), engine.NewInt(locY),
			engine.NewFloat(4 + r.Float64()*26), engine.NewInt(int64(r.Intn(365))),
		})
		salRows = append(salRows, engine.Row{
			engine.NewInt(int64(i + 1)), engine.NewText(lake),
			engine.NewInt(locX), engine.NewInt(locY),
			engine.NewFloat(r.Float64() * 5), engine.NewFloat(r.Float64() * 60),
		})
	}
	sensorKinds := []string{"thermistor", "conductivity", "ph", "turbidity"}
	for i := 0; i < rowsPerTable/10+1; i++ {
		sensorRows = append(sensorRows, engine.Row{
			engine.NewInt(int64(i + 1)), engine.NewText(lakeNames[r.Intn(len(lakeNames))]),
			engine.NewText(sensorKinds[r.Intn(len(sensorKinds))]),
			engine.NewInt(int64(r.Intn(3650))), engine.NewFloat(r.Float64() * 100),
		})
	}
	var cityRowsData []engine.Row
	for _, c := range cityRows {
		cityRowsData = append(cityRowsData, engine.Row{
			engine.NewText(c.city), engine.NewText(c.state),
			engine.NewInt(int64(c.locX)), engine.NewInt(int64(c.locY)), engine.NewInt(int64(c.pop)),
		})
	}
	var starRows, obsRows []engine.Row
	for i := 0; i < rowsPerTable/2+1; i++ {
		starRows = append(starRows, engine.Row{
			engine.NewInt(int64(i + 1)), engine.NewText(fmt.Sprintf("HD%05d", i+1)),
			engine.NewFloat(r.Float64() * 360), engine.NewFloat(r.Float64()*180 - 90),
			engine.NewFloat(r.Float64() * 15),
		})
	}
	bands := []string{"u", "g", "r", "i", "z"}
	for i := 0; i < rowsPerTable; i++ {
		obsRows = append(obsRows, engine.Row{
			engine.NewInt(int64(i + 1)), engine.NewInt(int64(r.Intn(rowsPerTable/2+1) + 1)),
			engine.NewInt(int64(r.Intn(365))), engine.NewFloat(r.Float64() * 1000),
			engine.NewText(bands[r.Intn(len(bands))]),
		})
	}
	if err := insert("WaterTemp", tempRows); err != nil {
		return err
	}
	if err := insert("WaterSalinity", salRows); err != nil {
		return err
	}
	if err := insert("CityLocations", cityRowsData); err != nil {
		return err
	}
	if err := insert("Sensors", sensorRows); err != nil {
		return err
	}
	if err := insert("Stars", starRows); err != nil {
		return err
	}
	return insert("Observations", obsRows)
}

// ---------------------------------------------------------------------------
// Trace generation
// ---------------------------------------------------------------------------

// Query is one entry of a synthetic trace, with its ground-truth session and
// topic labels.
type Query struct {
	User      string
	Group     string
	SQL       string
	IssuedAt  time.Time
	SessionID int    // ground-truth session index (global, 1-based)
	Topic     string // ground-truth topic label
}

// Trace is a generated multi-user exploratory workload.
type Trace struct {
	Queries  []Query
	Sessions int
	Users    []string
}

// Config controls trace generation.
type Config struct {
	Seed            int64
	Users           int
	SessionsPerUser int
	// QueriesPerSession is the inclusive range of session lengths.
	MinQueriesPerSession int
	MaxQueriesPerSession int
	// ThinkTime is the pause between consecutive queries of one session.
	MinThinkTime time.Duration
	MaxThinkTime time.Duration
	// SessionGap is the pause between a user's sessions (always above the
	// detector's MaxGap so ground truth is unambiguous).
	SessionGap time.Duration
	Start      time.Time
}

// DefaultConfig returns a medium-sized workload: 20 users, 10 sessions each.
func DefaultConfig() Config {
	return Config{
		Seed:                 42,
		Users:                20,
		SessionsPerUser:      10,
		MinQueriesPerSession: 3,
		MaxQueriesPerSession: 9,
		MinThinkTime:         20 * time.Second,
		MaxThinkTime:         3 * time.Minute,
		SessionGap:           2 * time.Hour,
		Start:                time.Date(2009, 1, 5, 8, 0, 0, 0, time.UTC),
	}
}

// topic is one exploration template.
type topic struct {
	name  string
	group string
	start func(r *rand.Rand) string
	steps []func(r *rand.Rand, prev string) string
}

// Generate produces a deterministic trace for the configuration.
func Generate(cfg Config) *Trace {
	r := rand.New(rand.NewSource(cfg.Seed))
	topics := allTopics()
	trace := &Trace{}
	sessionID := 0
	for u := 0; u < cfg.Users; u++ {
		user := fmt.Sprintf("user%02d", u)
		// Users 0..2/3 of the population are limnologists; the rest are
		// astronomers. Group membership drives both topic choice and the
		// access-control structure of the trace.
		group := "limnology"
		if u >= cfg.Users*2/3 {
			group = "astro"
		}
		trace.Users = append(trace.Users, user)
		now := cfg.Start.Add(time.Duration(u) * 7 * time.Minute)
		for s := 0; s < cfg.SessionsPerUser; s++ {
			sessionID++
			tp := pickTopic(r, topics, group)
			n := cfg.MinQueriesPerSession
			if cfg.MaxQueriesPerSession > cfg.MinQueriesPerSession {
				n += r.Intn(cfg.MaxQueriesPerSession - cfg.MinQueriesPerSession + 1)
			}
			current := tp.start(r)
			for q := 0; q < n; q++ {
				trace.Queries = append(trace.Queries, Query{
					User: user, Group: group, SQL: current, IssuedAt: now,
					SessionID: sessionID, Topic: tp.name,
				})
				step := tp.steps[r.Intn(len(tp.steps))]
				current = step(r, current)
				think := cfg.MinThinkTime
				if cfg.MaxThinkTime > cfg.MinThinkTime {
					think += time.Duration(r.Int63n(int64(cfg.MaxThinkTime - cfg.MinThinkTime)))
				}
				now = now.Add(think)
			}
			now = now.Add(cfg.SessionGap)
		}
	}
	trace.Sessions = sessionID
	return trace
}

func pickTopic(r *rand.Rand, topics []topic, group string) topic {
	var eligible []topic
	for _, t := range topics {
		if t.group == group || t.group == "" {
			eligible = append(eligible, t)
		}
	}
	return eligible[r.Intn(len(eligible))]
}

// Replay submits every trace query through the profiler in order, preserving
// timestamps, users, groups and group visibility. It returns the number of
// queries whose execution failed (they are still logged).
func Replay(trace *Trace, prof *profiler.Profiler) (int, error) {
	failures := 0
	for _, q := range trace.Queries {
		out, err := prof.Submit(profiler.Submission{
			User: q.User, Group: q.Group, Visibility: storage.VisibilityGroup,
			SQL: q.SQL, IssuedAt: q.IssuedAt,
		})
		if err != nil {
			return failures, fmt.Errorf("workload: replaying %q: %w", q.SQL, err)
		}
		if out.ExecError != nil {
			failures++
		}
	}
	return failures, nil
}

// ---------------------------------------------------------------------------
// Topic templates
// ---------------------------------------------------------------------------

func allTopics() []topic {
	return []topic{
		temperatureExploration(),
		correlationExploration(),
		cityAnalysis(),
		sensorAudit(),
		starSurvey(),
		lightCurveAnalysis(),
	}
}

func randTempThreshold(r *rand.Rand) int { return 8 + r.Intn(20) }

// temperatureExploration mimics Figure 2: filter WaterTemp by temperature,
// tweak the threshold, then join in salinity and locations.
func temperatureExploration() topic {
	return topic{
		name:  "temperature-exploration",
		group: "limnology",
		start: func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT * FROM WaterTemp WHERE temp < %d", randTempThreshold(r))
		},
		steps: []func(r *rand.Rand, prev string) string{
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT * FROM WaterTemp WHERE temp < %d", randTempThreshold(r))
			},
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT lake, temp FROM WaterTemp WHERE temp < %d ORDER BY temp", randTempThreshold(r))
			},
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT * FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < %d", randTempThreshold(r))
			},
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT WaterTemp.lake, WaterTemp.temp, WaterSalinity.salinity FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.loc_y = WaterSalinity.loc_y AND WaterTemp.temp < %d", randTempThreshold(r))
			},
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT lake, AVG(temp) AS avg_temp FROM WaterTemp WHERE measured_day > %d GROUP BY lake ORDER BY avg_temp DESC", r.Intn(300))
			},
		},
	}
}

// correlationExploration is the paper's salinity/temperature correlation goal.
func correlationExploration() topic {
	return topic{
		name:  "salinity-correlation",
		group: "limnology",
		start: func(r *rand.Rand) string {
			return "SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x"
		},
		steps: []func(r *rand.Rand, prev string) string{
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x AND WaterTemp.temp < %d", randTempThreshold(r))
			},
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT WaterSalinity.salinity, WaterTemp.temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x AND WaterSalinity.depth > %d", 5+r.Intn(40))
			},
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT WaterSalinity.lake, AVG(WaterSalinity.salinity) AS avg_sal, AVG(WaterTemp.temp) AS avg_temp FROM WaterSalinity, WaterTemp WHERE WaterSalinity.loc_x = WaterTemp.loc_x GROUP BY WaterSalinity.lake HAVING AVG(WaterTemp.temp) < %d", 10+randTempThreshold(r))
			},
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT WaterSalinity.salinity, WaterTemp.temp, CityLocations.city FROM WaterSalinity, WaterTemp, CityLocations WHERE WaterSalinity.loc_x = WaterTemp.loc_x AND WaterTemp.loc_x = CityLocations.loc_x AND CityLocations.state = '%s'", pick(r, "WA", "OR", "MI"))
			},
		},
	}
}

func cityAnalysis() topic {
	return topic{
		name:  "city-analysis",
		group: "limnology",
		start: func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT city FROM CityLocations WHERE state = '%s'", pick(r, "WA", "OR", "MI", "IL"))
		},
		steps: []func(r *rand.Rand, prev string) string{
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT city FROM CityLocations WHERE state = '%s' AND pop > %d", pick(r, "WA", "OR", "MI", "IL"), 10000*(1+r.Intn(50)))
			},
			func(r *rand.Rand, prev string) string {
				return "SELECT state, COUNT(*) AS cities, SUM(pop) AS total_pop FROM CityLocations GROUP BY state ORDER BY total_pop DESC"
			},
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT CityLocations.city, WaterTemp.temp FROM CityLocations, WaterTemp WHERE CityLocations.loc_x = WaterTemp.loc_x AND WaterTemp.temp > %d", randTempThreshold(r))
			},
		},
	}
}

func sensorAudit() topic {
	return topic{
		name:  "sensor-audit",
		group: "limnology",
		start: func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT sensor_id, battery FROM Sensors WHERE battery < %d", 10+r.Intn(40))
		},
		steps: []func(r *rand.Rand, prev string) string{
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT sensor_id, battery FROM Sensors WHERE battery < %d AND kind = '%s'", 10+r.Intn(40), pick(r, "thermistor", "conductivity", "ph"))
			},
			func(r *rand.Rand, prev string) string {
				return "SELECT lake, COUNT(*) AS sensors FROM Sensors GROUP BY lake ORDER BY sensors DESC"
			},
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT Sensors.lake, AVG(WaterTemp.temp) FROM Sensors, WaterTemp WHERE Sensors.lake = WaterTemp.lake AND Sensors.kind = '%s' GROUP BY Sensors.lake", pick(r, "thermistor", "conductivity"))
			},
		},
	}
}

func starSurvey() topic {
	return topic{
		name:  "star-survey",
		group: "astro",
		start: func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT name, magnitude FROM Stars WHERE magnitude < %d", 4+r.Intn(8))
		},
		steps: []func(r *rand.Rand, prev string) string{
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT name, magnitude FROM Stars WHERE magnitude < %d AND dec > %d", 4+r.Intn(8), r.Intn(60))
			},
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT name, ra, dec FROM Stars WHERE ra BETWEEN %d AND %d", 10*r.Intn(20), 200+10*r.Intn(16))
			},
			func(r *rand.Rand, prev string) string {
				return "SELECT COUNT(*) FROM Stars WHERE magnitude < 6"
			},
		},
	}
}

func lightCurveAnalysis() topic {
	return topic{
		name:  "light-curve",
		group: "astro",
		start: func(r *rand.Rand) string {
			return fmt.Sprintf("SELECT Stars.name, Observations.flux FROM Stars, Observations WHERE Stars.star_id = Observations.star_id AND Observations.band = '%s'", pick(r, "u", "g", "r", "i", "z"))
		},
		steps: []func(r *rand.Rand, prev string) string{
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT Stars.name, Observations.flux FROM Stars, Observations WHERE Stars.star_id = Observations.star_id AND Observations.band = '%s' AND Observations.observed_day > %d", pick(r, "u", "g", "r"), r.Intn(300))
			},
			func(r *rand.Rand, prev string) string {
				return "SELECT Stars.name, AVG(Observations.flux) AS avg_flux FROM Stars, Observations WHERE Stars.star_id = Observations.star_id GROUP BY Stars.name ORDER BY avg_flux DESC LIMIT 20"
			},
			func(r *rand.Rand, prev string) string {
				return fmt.Sprintf("SELECT Observations.band, COUNT(*) FROM Observations WHERE Observations.flux > %d GROUP BY Observations.band", 100+r.Intn(500))
			},
		},
	}
}

func pick(r *rand.Rand, options ...string) string {
	return options[r.Intn(len(options))]
}
