package workload

import (
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/profiler"
	"repro/internal/session"
	"repro/internal/sql"
	"repro/internal/storage"
)

func TestPopulateCreatesSchemaAndData(t *testing.T) {
	eng := engine.New()
	if err := Populate(eng, 500, 1); err != nil {
		t.Fatalf("Populate: %v", err)
	}
	tables := eng.Catalog().TableNames()
	if len(tables) != 6 {
		t.Fatalf("tables = %v, want 6", tables)
	}
	for table, wantCols := range Columns() {
		schema, err := eng.Catalog().SchemaOf(table)
		if err != nil {
			t.Fatalf("SchemaOf(%s): %v", table, err)
		}
		if len(schema.Columns) != len(wantCols) {
			t.Errorf("%s columns = %d, want %d", table, len(schema.Columns), len(wantCols))
		}
	}
	n, err := eng.Catalog().RowCount("WaterTemp")
	if err != nil || n != 500 {
		t.Errorf("WaterTemp rows = %d (%v), want 500", n, err)
	}
	// The data is queryable: the paper's example query runs.
	res, err := eng.Execute("SELECT WaterTemp.lake, WaterTemp.temp, WaterSalinity.salinity FROM WaterTemp, WaterSalinity WHERE WaterTemp.loc_x = WaterSalinity.loc_x AND WaterTemp.temp < 18")
	if err != nil {
		t.Fatalf("example query: %v", err)
	}
	if res.Cardinality() == 0 {
		t.Errorf("example query returned no rows; data generation is degenerate")
	}
}

func TestPopulateDeterministic(t *testing.T) {
	engA := engine.New()
	engB := engine.New()
	if err := Populate(engA, 100, 7); err != nil {
		t.Fatal(err)
	}
	if err := Populate(engB, 100, 7); err != nil {
		t.Fatal(err)
	}
	resA := engA.MustExecute("SELECT SUM(temp) FROM WaterTemp")
	resB := engB.MustExecute("SELECT SUM(temp) FROM WaterTemp")
	if resA.Rows[0][0].Float != resB.Rows[0][0].Float {
		t.Errorf("same seed should give identical data")
	}
}

func TestGenerateTraceShape(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = 6
	cfg.SessionsPerUser = 4
	trace := Generate(cfg)
	if len(trace.Users) != 6 {
		t.Errorf("users = %d", len(trace.Users))
	}
	if trace.Sessions != 24 {
		t.Errorf("sessions = %d, want 24", trace.Sessions)
	}
	if len(trace.Queries) < 24*cfg.MinQueriesPerSession {
		t.Errorf("queries = %d, too few", len(trace.Queries))
	}
	// Every query parses.
	for _, q := range trace.Queries {
		if _, err := sql.Parse(q.SQL); err != nil {
			t.Fatalf("generated query does not parse: %q: %v", q.SQL, err)
		}
	}
	// Timestamps are non-decreasing per user, and session IDs are grouped.
	perUser := map[string]time.Time{}
	for _, q := range trace.Queries {
		if last, ok := perUser[q.User]; ok && q.IssuedAt.Before(last) {
			t.Fatalf("timestamps go backwards for %s", q.User)
		}
		perUser[q.User] = q.IssuedAt
		if q.SessionID <= 0 || q.Topic == "" {
			t.Fatalf("query missing ground truth: %+v", q)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = 3
	cfg.SessionsPerUser = 2
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a.Queries) != len(b.Queries) {
		t.Fatalf("trace lengths differ")
	}
	for i := range a.Queries {
		if a.Queries[i].SQL != b.Queries[i].SQL || !a.Queries[i].IssuedAt.Equal(b.Queries[i].IssuedAt) {
			t.Fatalf("traces differ at %d", i)
		}
	}
}

func TestTopicsMatchGroups(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Users = 9
	cfg.SessionsPerUser = 3
	trace := Generate(cfg)
	for _, q := range trace.Queries {
		switch q.Group {
		case "limnology":
			if strings.Contains(q.SQL, "Stars") || strings.Contains(q.SQL, "Observations") {
				t.Fatalf("limnology user issued astronomy query: %q", q.SQL)
			}
		case "astro":
			if strings.Contains(q.SQL, "WaterTemp") || strings.Contains(q.SQL, "CityLocations") {
				t.Fatalf("astro user issued limnology query: %q", q.SQL)
			}
		default:
			t.Fatalf("unknown group %q", q.Group)
		}
	}
}

func TestReplayThroughProfiler(t *testing.T) {
	eng := engine.New()
	if err := Populate(eng, 200, 1); err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore()
	prof := profiler.New(eng, store, profiler.DefaultConfig())

	cfg := DefaultConfig()
	cfg.Users = 4
	cfg.SessionsPerUser = 3
	trace := Generate(cfg)
	failures, err := Replay(trace, prof)
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if failures != 0 {
		t.Errorf("execution failures = %d, want 0 (every generated query must run)", failures)
	}
	if store.Count() != len(trace.Queries) {
		t.Errorf("store count = %d, want %d", store.Count(), len(trace.Queries))
	}
	// Runtime stats and samples recorded.
	admin := storage.Principal{Admin: true}
	withStats := 0
	for _, rec := range store.All(admin) {
		if rec.Stats.ExecTime > 0 {
			withStats++
		}
	}
	if withStats != store.Count() {
		t.Errorf("queries with stats = %d, want all %d", withStats, store.Count())
	}
}

// TestSessionDetectionRecoversGroundTruth is the E2 correctness check: the
// detector's segmentation over the synthetic trace must closely match the
// generator's ground-truth sessions.
func TestSessionDetectionRecoversGroundTruth(t *testing.T) {
	eng := engine.New()
	if err := Populate(eng, 100, 1); err != nil {
		t.Fatal(err)
	}
	store := storage.NewStore()
	prof := profiler.New(eng, store, profiler.DefaultConfig())
	cfg := DefaultConfig()
	cfg.Users = 6
	cfg.SessionsPerUser = 5
	trace := Generate(cfg)
	if _, err := Replay(trace, prof); err != nil {
		t.Fatal(err)
	}
	detected := session.NewDetector(session.DefaultConfig()).Detect(store.All(storage.Principal{Admin: true}), 0)
	// The detector may split a ground-truth session when consecutive template
	// steps look dissimilar, but it must be close: within 25% of the truth,
	// and never fewer sessions than the truth (gaps are unambiguous).
	if len(detected) < trace.Sessions {
		t.Errorf("detected %d sessions, ground truth %d (should never merge across the 2h gap)", len(detected), trace.Sessions)
	}
	if float64(len(detected)) > 1.25*float64(trace.Sessions) {
		t.Errorf("detected %d sessions, ground truth %d (over-segmentation beyond 25%%)", len(detected), trace.Sessions)
	}
	// No detected session spans a ground-truth boundary: check via boundary
	// precision — for every detected session, all queries share one
	// ground-truth session ID.
	truthByKey := map[string]int{}
	for _, q := range trace.Queries {
		truthByKey[q.User+"|"+q.SQL+"|"+q.IssuedAt.String()] = q.SessionID
	}
	for _, s := range detected {
		seen := map[int]bool{}
		for _, rec := range s.Queries {
			key := rec.User + "|" + rec.Text + "|" + rec.IssuedAt.String()
			if id, ok := truthByKey[key]; ok {
				seen[id] = true
			}
		}
		if len(seen) > 1 {
			t.Errorf("detected session %d mixes %d ground-truth sessions", s.ID, len(seen))
		}
	}
}
